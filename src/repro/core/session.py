"""Re-entrant session cores: shared device state vs per-session state.

The paper's deployment story is many client terminals contending for one
slow USB key.  This module splits what used to be the monolithic
:class:`~repro.core.ghostdb.GhostDB` blob into the two ownership domains
that story implies:

* :class:`DeviceCore` -- everything there is exactly **one** of per
  device: the simulated hardware stack, the FTL and its flash image, the
  loaded catalog/visible/hidden data, the device-wide observability
  (metrics registry, flight recorder, redactor), fault injection, and
  the admission ledger that hands out per-session RAM partitions.
* :class:`SessionContext` -- everything each open session owns
  privately: its RAM partition and buffer pool (a :class:`HardwareLease`),
  its simulated-time account, its USB capture, its tracer and resource
  ledger, its leak scorecard, and its own executor/optimizer/link wired
  against a :class:`SessionDevice` view of the shared hardware.

The **default session** (``lease=None``) runs against the real device
objects with no indirection at all -- it is bit-for-bit the
single-caller engine every committed baseline was measured on.  Leased
sessions get a partition of the secure RAM and a private measurement
plane; the cooperative scheduler (:mod:`repro.core.scheduler`)
interleaves them at batch-window boundaries by *activating* one lease at
a time (:meth:`DeviceCore.activated`).

Activation swaps the device's volatile per-session surfaces -- RAM
budget, buffer pool, flash op counters, USB capture log -- for the
lease's, tees every simulated-clock charge into the lease's private
clock, and mirrors every USB record into the device-lifetime log.  The
result is the invariant the whole refactor hangs on: a session's rows,
:class:`~repro.engine.metrics.ExecutionMetrics` diffs and leak
signatures are bit-identical whether its statements ran alone or
interleaved with any number of other sessions, while the device log
still shows the spy the full interleaved traffic stream.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, replace

from repro.catalog.schema import Schema, SchemaError
from repro.catalog.tree import SchemaTree
from repro.engine.database import HiddenDatabase
from repro.engine.executor import DmlResult, ExecConfig, Executor, QueryResult
from repro.engine.plan import DeletePlan, Project, UpdatePlan
from repro.faults import (
    FAULT_PROFILES,
    FaultInjector,
    FaultProfile,
    GhostDBFaultError,
    PowerCutError,
)
from repro.hardware.clock import SimClock
from repro.hardware.device import DeviceCounters, SmartUsbDevice
from repro.hardware.flash import FlashStats
from repro.hardware.pagecache import CacheStats, PageCache
from repro.hardware.profiles import DEMO_DEVICE, HardwareProfile
from repro.hardware.ram import RamBudget
from repro.obs import Observability, get_logger
from repro.optimizer.optimizer import Optimizer, RankedPlan
from repro.optimizer.space import PlanBuilder, Strategy
from repro.privacy.meter import TrafficProfile, profile_records
from repro.sql import ast
from repro.sql.binder import Binder, BoundQuery
from repro.sql.ddl import create_table
from repro.sql.parser import parse_statement
from repro.visible.link import DeviceLink
from repro.visible.site import VisibleSite

log = get_logger(__name__)


class SessionError(RuntimeError):
    """The session was used out of order (e.g. query before load)."""


class AdmissionError(SessionError):
    """A session could not be admitted: the device's session cap or
    secure RAM budget is exhausted.  Callers either surface the
    rejection or queue the request until a session closes."""


@dataclass
class SessionConfig:
    """Session-wide tunables."""

    exec_config: ExecConfig | None = None
    id_batch: int = 256
    index_columns: list | None = None
    #: Fault-injection regime to attach after load (a name from
    #: :data:`repro.faults.FAULT_PROFILES`), or None for a healthy device.
    fault_profile: str | None = None
    fault_seed: int = 0
    #: Device buffer-pool capacity in pages: ``None`` takes the profile
    #: default (a quarter of RAM), ``0`` disables the pool.
    cache_pages: int | None = None
    #: Flight-recorder ring capacity in events (``None`` takes the
    #: recorder default) and enablement.  The ring is host memory,
    #: accounted outside the device's secure RAM budget.
    flight_capacity: int | None = None
    flight_enabled: bool = True
    #: Write a postmortem bundle (``DUMP_<seed>.json`` in ``dump_dir``)
    #: whenever an injected fault aborts a query.
    dump_on_fault: bool = False
    dump_dir: str = "."
    #: Most sessions that may be open against one device at once (the
    #: default session is the console and is not counted).
    max_sessions: int = 8

    def __post_init__(self):
        if self.exec_config is None:
            self.exec_config = ExecConfig()


class HardwareLease:
    """One session's partition of the device's volatile resources.

    A lease owns the four things that make a session's measurements
    private: a RAM budget carved out of the secure chip's RAM, a buffer
    pool over that budget, a simulated clock that starts at zero, and a
    USB capture log plus flash op counters of its own.  Flash contents,
    the FTL map and the secure chip are *not* leased -- they are the
    shared database.
    """

    def __init__(
        self,
        name: str,
        profile: HardwareProfile,
        ram_bytes: int,
        cache_pages: int | None = None,
        flight=None,
    ):
        self.name = name
        self.capacity = ram_bytes
        #: Private simulated-time account, fed by the device clock's tee
        #: while this lease is active.  Starts at zero like a
        #: single-session device's clock, so per-query time diffs are
        #: bit-identical to a serial run.
        self.clock = SimClock()
        #: The session's RAM partition.  No metrics sink: the device
        #: gauges track the root budget; per-session peaks surface via
        #: ``ghostdb_session_ram_high_water_bytes``.
        self.ram = RamBudget(capacity=ram_bytes, flight=flight)
        self.flash_stats = FlashStats()
        if cache_pages is None:
            # Same shape as the device default: a quarter of (partition)
            # RAM, so a full-RAM lease behaves exactly like the classic
            # single-session device.
            cache_pages = ram_bytes // (4 * profile.page_size)
        self.cache = PageCache(
            budget=self.ram,
            page_size=profile.page_size,
            capacity_pages=cache_pages,
        )
        self.cache.flight = flight
        self.usb_log: list = []
        self.bytes_to_device = 0
        self.bytes_to_host = 0

    @property
    def firm_ram_used(self) -> int:
        """Non-reclaimable bytes currently reserved -- the number that
        must be zero once a session has no query in flight."""
        return self.ram.used - self.ram.reclaimable_used


class SessionDevice:
    """A leased session's view of the shared device.

    Hardware that exists once (clock, flash, FTL, chip, USB channel,
    fault injector, flight recorder) resolves to the real device;
    volatile per-session surfaces (RAM budget, buffer pool) resolve to
    the lease; and :meth:`counters` is assembled entirely from lease
    state, so :class:`~repro.engine.metrics.ExecutionMetrics` diffs
    taken through this view are session-pure no matter what other
    sessions did in between.
    """

    def __init__(self, core: "DeviceCore", lease: HardwareLease):
        self._core = core
        self._lease = lease

    # -- shared hardware -------------------------------------------------
    @property
    def profile(self):
        return self._core.device.profile

    @property
    def clock(self):
        return self._core.device.clock

    @property
    def flash(self):
        return self._core.device.flash

    @property
    def ftl(self):
        return self._core.device.ftl

    @property
    def chip(self):
        return self._core.device.chip

    @property
    def usb(self):
        return self._core.device.usb

    @property
    def faults(self):
        return self._core.device.faults

    @property
    def flight(self):
        return self._core.device.flight

    @property
    def metrics(self):
        return self._core.device.metrics

    # -- leased surfaces -------------------------------------------------
    @property
    def ram(self):
        return self._lease.ram

    @property
    def page_cache(self):
        return self._lease.cache

    # -- session-pure measurement ---------------------------------------
    def counters(self) -> DeviceCounters:
        lease = self._lease
        if self._core.active_lease is lease:
            # The live byte totals sit on the channel while activated;
            # the lease copies are only synced on deactivation.
            usb = self._core.device.usb
            to_device, to_host = usb.bytes_to_device, usb.bytes_to_host
        else:
            to_device, to_host = lease.bytes_to_device, lease.bytes_to_host
        return DeviceCounters(
            time=lease.clock.breakdown(),
            flash=lease.flash_stats.snapshot(),
            ram_high_water=lease.ram.high_water,
            usb_messages=len(lease.usb_log),
            usb_bytes_to_device=to_device,
            usb_bytes_to_host=to_host,
            cache=lease.cache.stats.snapshot(),
        )

    def reset_measurements(self) -> None:
        lease = self._lease
        lease.clock.reset()
        lease.usb_log.clear()
        fresh = FlashStats()
        lease.flash_stats = fresh
        lease.bytes_to_device = 0
        lease.bytes_to_host = 0
        if self._core.active_lease is lease:
            device = self._core.device
            device.flash.stats = fresh
            device.usb.bytes_to_device = 0
            device.usb.bytes_to_host = 0
        lease.ram.reset_high_water()
        lease.cache.clear()
        lease.cache.stats = CacheStats()

    def __repr__(self) -> str:
        return (
            f"SessionDevice(lease={self._lease.name!r}, "
            f"ram={self._lease.capacity}B)"
        )


class DeviceCore:
    """Everything there is one of per device, plus session admission.

    Owns the simulated hardware, the device-wide observability bundle,
    the loaded database (catalog, visible site, hidden side), fault
    injection and recovery state -- and the multiplexing machinery:
    the lease ledger that partitions secure RAM across sessions, the
    peer-cache list the FTL broadcasts invalidations to, and the
    activation swap the scheduler wraps around every step.
    """

    def __init__(
        self,
        profile: HardwareProfile = DEMO_DEVICE,
        config: SessionConfig | None = None,
    ):
        self.profile = profile
        self.config = config or SessionConfig()
        self.obs = Observability(
            flight_capacity=self.config.flight_capacity,
            flight_enabled=self.config.flight_enabled,
        )
        self.device = SmartUsbDevice(
            profile,
            metrics=self.obs.registry,
            cache_pages=self.config.cache_pages,
            flight=self.obs.flight,
        )
        # Spans and flight events measure simulated time against this
        # device's clock.
        self.obs.tracer.clock = self.device.clock
        self.obs.flight.clock = self.device.clock
        self.obs.flight.metric = self.obs.registry.counter(
            "ghostdb_flight_events_total"
        ).labelled()
        self.schema = Schema()
        self.tree: SchemaTree | None = None
        self.site: VisibleSite | None = None
        self.hidden: HiddenDatabase | None = None
        self._pending_inserts: dict[str, list[tuple]] = {}
        self.fault_injector: FaultInjector | None = None
        self.needs_remount = False
        #: Open leased sessions by name (the default session is not
        #: listed; it is the console, outside the admission ledger).
        self.sessions: dict[str, SessionContext] = {}
        self._session_serial = 0
        #: Every live page cache over this device's FTL, root pool
        #: included; writes broadcast invalidations across all of them.
        self._peer_caches: list[PageCache] = [self.device.page_cache]
        self.device.ftl.peer_caches = self._peer_caches
        self.active_lease: HardwareLease | None = None
        #: Facade backref (set by GhostDB) for postmortem bundles.
        self.owner = None

    # ------------------------------------------------------------------
    # Shared database lifecycle
    # ------------------------------------------------------------------

    def create_table(self, statement: ast.CreateTable):
        if self.tree is not None:
            raise SessionError("schema is frozen once data is loaded")
        return create_table(self.schema, statement)

    def buffer_insert(self, statement: ast.Insert) -> int:
        """INSERTs are buffered; :meth:`load_data` flushes them.

        The device is loaded once in a secure setting (Section 2), so
        inserts are collected and loaded together.
        """
        if self.tree is not None:
            raise SessionError(
                "data is loaded; GhostDB devices are loaded once, in a "
                "secure setting"
            )
        table = self.schema.table(statement.table)
        for row in statement.values:
            if len(row) != len(table.columns):
                raise SchemaError(
                    f"{table.name}: INSERT arity {len(row)} != "
                    f"{len(table.columns)} columns"
                )
            normalised = tuple(
                col.dtype.validate(value)
                for col, value in zip(table.columns, row)
            )
            self._pending_inserts.setdefault(
                table.name.lower(), []
            ).append(normalised)
        return len(statement.values)

    def load_data(self, rows_by_table: dict[str, list] | None = None) -> int:
        """Split and load the database onto both sides; build indexes.

        Returns the total row count.  Sessions wire their executors
        afterwards via :meth:`SessionContext.attach`.
        """
        if self.tree is not None:
            raise SessionError("data is already loaded")
        rows_by_table = {
            name.lower(): list(rows)
            for name, rows in (rows_by_table or {}).items()
        }
        for name, rows in self._pending_inserts.items():
            rows_by_table.setdefault(name, []).extend(rows)
            rows_by_table[name].sort(
                key=lambda r, t=self.schema.table(name): r[
                    t.column_index(t.pk.name)
                ]
            )
        self._pending_inserts.clear()
        for table in self.schema:
            rows_by_table.setdefault(table.name.lower(), [])

        self.tree = SchemaTree(self.schema)
        self.site = VisibleSite(self.schema)
        for name, rows in rows_by_table.items():
            self.site.load(name, rows)
        self.hidden = HiddenDatabase.load(
            self.device,
            self.tree,
            rows_by_table,
            index_columns=self.config.index_columns,
        )
        return sum(len(rows) for rows in rows_by_table.values())

    def finish_load(self, total_rows: int) -> None:
        """Post-attach load steps: redaction allowances, measurement
        reset, configured faults."""
        # Schema identifiers (names, never values) may appear in traces.
        self.obs.redactor.allow_schema(self.schema)
        # Loading is not part of any query measurement.
        self.device.reset_measurements()
        if self.config.fault_profile:
            self.set_faults(self.config.fault_profile, self.config.fault_seed)
        log.info(
            "session loaded: %d tables, %d rows total",
            sum(1 for _ in self.schema), total_rows,
        )

    # ------------------------------------------------------------------
    # Fault injection and recovery
    # ------------------------------------------------------------------

    def set_faults(
        self,
        profile: str | FaultProfile | None,
        seed: int = 0,
    ) -> FaultInjector | None:
        """Attach a deterministic fault injector to the device.

        ``profile`` is a name from :data:`repro.faults.FAULT_PROFILES`
        (or a :class:`FaultProfile`); ``None`` or ``"none"``-with-no-rates
        still attaches, which is useful for scheduled power cuts.  The
        same (workload, profile, seed) triple always reproduces the
        identical fault schedule.  Returns the injector.
        """
        if profile is None:
            self.clear_faults()
            return None
        if isinstance(profile, str):
            try:
                profile = FAULT_PROFILES[profile]
            except KeyError:
                raise SessionError(
                    f"unknown fault profile {profile!r}; choose from "
                    f"{sorted(FAULT_PROFILES)}"
                ) from None
        self.fault_injector = FaultInjector(profile=profile, seed=seed)
        self.device.attach_faults(self.fault_injector)
        return self.fault_injector

    def clear_faults(self) -> None:
        """Detach the fault injector; the device is healthy again."""
        self.fault_injector = None
        self.device.detach_faults()

    def remount(self) -> None:
        """Plug the key back in after power loss.

        Rebuilds the FTL map from the flash spare-area journal (rolling
        back torn writes to the last committed state) and resets the
        volatile RAM budget.  A mount-time *orphan sweep* then frees
        every recovered page the catalog no longer references.
        Idempotent; safe to call on a healthy device.
        """
        if self.active_lease is not None:
            raise SessionError("cannot remount while a session is active")
        self.device.remount()
        # The recovery scan built a fresh FTL: re-point it at the full
        # peer-cache list or dormant sessions resume with stale pages.
        self.device.ftl.peer_caches = self._peer_caches
        if self.tree is not None:
            ftl = self.device.ftl
            orphans = ftl.mapped_lpages() - self.hidden.referenced_pages()
            for lpage in orphans:
                ftl.free(lpage)
            if orphans:
                self.obs.registry.counter(
                    "ghostdb_recovery_orphan_pages_total"
                ).inc(len(orphans))
                self.obs.flight.record(
                    "orphan_sweep", freed=len(orphans)
                )
        self.needs_remount = False

    # ------------------------------------------------------------------
    # Session admission
    # ------------------------------------------------------------------

    @property
    def leased_bytes(self) -> int:
        """Secure RAM currently partitioned out to open sessions."""
        return sum(
            ctx.lease.capacity
            for ctx in self.sessions.values()
            if ctx.lease is not None
        )

    def open_session(
        self,
        name: str | None = None,
        ram_bytes: int | None = None,
        config: SessionConfig | None = None,
    ) -> "SessionContext":
        """Admit a new leased session, or raise :class:`AdmissionError`.

        ``ram_bytes`` is the session's RAM partition (default: a quarter
        of the device's secure RAM).  Admission fails when the session
        cap is reached or the requested partition does not fit in the
        unleased remainder of the secure budget -- callers queue or
        surface the rejection.
        """
        if self.tree is None:
            raise SessionError("load data before opening sessions")
        registry = self.obs.registry
        self._register_session_families()
        if name is None:
            self._session_serial += 1
            name = f"session-{self._session_serial}"
        if name in self.sessions:
            registry.counter("ghostdb_session_rejections_total").inc(
                reason="duplicate_name"
            )
            raise AdmissionError(f"session {name!r} is already open")
        if len(self.sessions) >= self.config.max_sessions:
            registry.counter("ghostdb_session_rejections_total").inc(
                reason="session_cap"
            )
            raise AdmissionError(
                f"session cap reached ({self.config.max_sessions} open)"
            )
        if ram_bytes is None:
            ram_bytes = self.profile.ram_bytes // 4
        if ram_bytes <= 0:
            raise SessionError(f"unusable RAM partition: {ram_bytes} B")
        if self.leased_bytes + ram_bytes > self.profile.ram_bytes:
            registry.counter("ghostdb_session_rejections_total").inc(
                reason="ram_budget"
            )
            raise AdmissionError(
                f"RAM budget exhausted: {name!r} requested {ram_bytes} B "
                f"but only {self.profile.ram_bytes - self.leased_bytes} B "
                f"of the secure budget remain unleased"
            )
        session_config = config if config is not None else self.config
        lease = HardwareLease(
            name,
            self.profile,
            ram_bytes,
            cache_pages=session_config.cache_pages,
            flight=self.obs.flight,
        )
        ctx = SessionContext(
            core=self, name=name, config=session_config, lease=lease
        )
        ctx.attach()
        self.sessions[name] = ctx
        self._peer_caches.append(lease.cache)
        registry.counter("ghostdb_sessions_opened_total").inc()
        registry.gauge("ghostdb_sessions_open").set(len(self.sessions))
        self.obs.flight.record(
            "session_open", session=name, ram_bytes=ram_bytes
        )
        return ctx

    def close_session(self, session: "SessionContext") -> None:
        """Release a leased session's RAM partition and admission slot."""
        if self.sessions.get(session.name) is not session:
            raise SessionError(f"session {session.name!r} is not open")
        if self.active_lease is session.lease:
            raise SessionError("cannot close a session mid-step")
        del self.sessions[session.name]
        session.closed = True
        if session.lease.cache in self._peer_caches:
            self._peer_caches.remove(session.lease.cache)
        registry = self.obs.registry
        registry.counter("ghostdb_sessions_closed_total").inc()
        registry.gauge("ghostdb_sessions_open").set(len(self.sessions))
        self.obs.flight.record(
            "session_close",
            session=session.name,
            leaked_ram=session.lease.firm_ram_used,
        )

    def _register_session_families(self) -> None:
        """Multi-session metric families, registered when the first
        lease opens (so single-session expositions are unchanged)."""
        reg = self.obs.registry
        reg.gauge(
            "ghostdb_sessions_open", "leased sessions currently open"
        )
        reg.counter(
            "ghostdb_sessions_opened_total", "leased sessions ever admitted"
        )
        reg.counter(
            "ghostdb_sessions_closed_total", "leased sessions ever closed"
        )
        reg.counter(
            "ghostdb_session_rejections_total",
            "session admissions refused, by reason",
        )
        reg.counter(
            "ghostdb_session_queries_total",
            "statements completed, by session",
        )
        reg.counter(
            "ghostdb_session_aborts_total",
            "statements aborted by faults, by session",
        )
        reg.counter(
            "ghostdb_session_sim_seconds_total",
            "simulated device seconds consumed, by session",
        )
        reg.counter(
            "ghostdb_session_steps_total",
            "scheduler steps (batch windows) granted, by session",
        )
        reg.gauge(
            "ghostdb_session_ram_high_water_bytes",
            "largest RAM peak within the session's partition, by session",
        )

    # ------------------------------------------------------------------
    # Activation: swap one lease's volatile surfaces into the device
    # ------------------------------------------------------------------

    @contextmanager
    def activated(self, lease: HardwareLease | None):
        """Run a block with ``lease``'s volatile surfaces swapped into
        the shared device.

        ``None`` (the default session) and re-entry with the already
        active lease are no-ops.  While active: RAM allocations land in
        the lease's partition, the buffer pool is the lease's, flash op
        counters and the USB capture are the lease's, every clock charge
        is teed into the lease's private clock, and every USB record is
        mirrored into the device-lifetime log -- the spy's interleaved
        view.  Cooperative, not concurrent: nesting two different
        leases is a scheduling bug and raises.
        """
        if lease is None or self.active_lease is lease:
            yield
            return
        if self.active_lease is not None:
            raise SessionError(
                "cannot activate a lease while another is active"
            )
        device = self.device
        usb = device.usb
        saved = (
            device.ram,
            device.page_cache,
            device.ftl.cache,
            device.flash.stats,
            usb.log,
            usb.bytes_to_device,
            usb.bytes_to_host,
        )
        device.ram = lease.ram
        device.page_cache = lease.cache
        device.ftl.cache = lease.cache
        device.flash.stats = lease.flash_stats
        usb.log = lease.usb_log
        usb.bytes_to_device = lease.bytes_to_device
        usb.bytes_to_host = lease.bytes_to_host
        usb.mirror = saved[4]
        device.clock.tee = lease.clock
        self.active_lease = lease
        try:
            yield
        finally:
            lease.bytes_to_device = usb.bytes_to_device
            lease.bytes_to_host = usb.bytes_to_host
            # The swapped-in stats object may have been replaced by a
            # mid-step reset; keep whatever is current as the lease's.
            lease.flash_stats = device.flash.stats
            (
                device.ram,
                device.page_cache,
                device.ftl.cache,
                device.flash.stats,
                usb.log,
                usb.bytes_to_device,
                usb.bytes_to_host,
            ) = saved
            usb.mirror = None
            device.clock.tee = None
            self.active_lease = None


class SessionContext:
    """One session's private state and statement surface.

    The default session (``lease=None``) shares the device-wide
    observability bundle and talks to the real device -- the classic
    single-caller wiring.  Leased sessions own a tracer and resource
    ledger (sharing the registry, flight recorder and redactor), talk
    to the device through a :class:`SessionDevice` view, and must run
    under :meth:`DeviceCore.activated` -- which :meth:`execute` does
    itself, and the scheduler does per step.
    """

    def __init__(
        self,
        core: DeviceCore,
        name: str,
        config: SessionConfig,
        lease: HardwareLease | None = None,
    ):
        self.core = core
        self.name = name
        self.config = config
        self.lease = lease
        self.closed = False
        if lease is None:
            self.obs = core.obs
            self.device = core.device
        else:
            self.obs = Observability(
                clock=core.device.clock,
                registry=core.obs.registry,
                flight=core.obs.flight,
                redactor=core.obs.redactor,
            )
            self.device = SessionDevice(core, lease)
        self.link: DeviceLink | None = None
        self.executor: Executor | None = None
        self.optimizer: Optimizer | None = None
        self._last_leak_profile: TrafficProfile | None = None

    @property
    def profile(self) -> HardwareProfile:
        return self.core.profile

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Wire link/executor/optimizer against the loaded database.

        Batch sizes scale with the RAM the session actually has -- the
        full chip for the default session, the partition for a lease --
        so a full-RAM lease behaves exactly like the classic device.
        """
        core = self.core
        if core.tree is None:
            raise SessionError("load data before attaching sessions")
        ram_bytes = (
            core.profile.ram_bytes
            if self.lease is None
            else self.lease.capacity
        )
        # Receive buffers are real allocations, so a 16 KB partition
        # cannot afford 64 KB-class batches.
        id_batch = min(self.config.id_batch, max(32, ram_bytes // 256))
        exec_config = self.config.exec_config
        fetch_batch = min(
            exec_config.fetch_batch, max(8, ram_bytes // 512)
        )
        # exec_batch is deliberately *not* RAM-scaled: batch windows are
        # host-side lists, invisible to the device's budget.
        exec_config = ExecConfig(
            max_fan_in=exec_config.max_fan_in,
            bloom_fp_target=exec_config.bloom_fp_target,
            fetch_batch=fetch_batch,
            exec_batch=exec_config.exec_batch,
        )
        self.link = DeviceLink(
            self.device, core.site, id_batch=id_batch, fetch_batch=fetch_batch
        )
        self.executor = Executor(
            self.device, self.link, core.hidden, exec_config, obs=self.obs
        )
        cost_profile = (
            core.profile
            if self.lease is None
            else replace(core.profile, ram_bytes=ram_bytes)
        )
        self.optimizer = Optimizer(
            core.hidden,
            core.site,
            cost_profile,
            fan_in=self.config.exec_config.max_fan_in,
            bloom_fp_target=self.config.exec_config.bloom_fp_target,
            obs=self.obs,
            cache_pages=self.device.page_cache.capacity_for_costing,
        )

    def _activated(self):
        return (
            nullcontext()
            if self.lease is None
            else self.core.activated(self.lease)
        )

    def _require_loaded(self) -> None:
        if self.core.tree is None:
            raise SessionError("load data before querying")

    def _require_open(self) -> None:
        if self.closed:
            raise SessionError(f"session {self.name!r} is closed")

    def _guard_powered(self) -> None:
        if self.core.needs_remount:
            raise SessionError(
                "device lost power mid-operation; call remount() before "
                "querying again"
            )

    def _abort_on_fault(self, exc: GhostDBFaultError) -> None:
        """Record a fault-aborted query; power loss demands a remount."""
        self.obs.registry.counter(
            "ghostdb_recovery_aborted_queries_total"
        ).inc(reason=type(exc).__name__)
        if isinstance(exc, PowerCutError):
            self.core.needs_remount = True
        if self.config.dump_on_fault and self.core.owner is not None:
            self.core.owner.dump_bundle(
                reason=type(exc).__name__,
                directory=self.config.dump_dir,
            )

    # ------------------------------------------------------------------
    # Statement surface
    # ------------------------------------------------------------------

    def execute(self, sql: str):
        """Execute one statement: CREATE TABLE, INSERT, SELECT, UPDATE
        or DELETE."""
        statement = parse_statement(sql)
        if isinstance(statement, ast.CreateTable):
            return self.core.create_table(statement)
        if isinstance(statement, ast.Insert):
            return self.core.buffer_insert(statement)
        if isinstance(statement, ast.Select):
            return self._run_select(statement, sql)
        if isinstance(statement, (ast.Update, ast.Delete)):
            return self._run_dml(statement, sql)
        raise SessionError(f"unsupported statement {type(statement).__name__}")

    def query(self, sql: str) -> QueryResult:
        """Optimize and execute a SELECT; returns rows plus metrics."""
        result = self.execute(sql)
        if not isinstance(result, QueryResult):
            raise SessionError("query() expects a SELECT statement")
        return result

    def bind(self, sql: str) -> BoundQuery:
        """Parse and bind a SELECT without running it."""
        self._require_loaded()
        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            raise SessionError("bind() expects a SELECT")
        return Binder(self.core.tree).bind(statement)

    def statement_steps(self, sql: str):
        """The statement as a step generator for the scheduler.

        Yields at every batch-window boundary (SELECT) or not at all
        (DML runs as one atomic rebuild transaction); the result object
        is the generator's return value.  The caller owns activation.
        """
        statement = parse_statement(sql)
        if isinstance(statement, ast.Select):
            return self._select_steps(statement, sql)
        if isinstance(statement, (ast.Update, ast.Delete)):
            return self._dml_steps(statement, sql)
        raise SessionError(
            "the scheduler runs SELECT, UPDATE and DELETE statements"
        )

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def _announce_query(self, sql: str) -> None:
        """Ship the query text to the device, as the terminal would.

        The paper accepts that the spy learns "the queries he poses";
        this makes that observable in the captured traffic.
        """
        self.link.announce(sql)

    def _run_select(self, statement: ast.Select, sql: str = "") -> QueryResult:
        return self._drain(self._select_steps(statement, sql))

    def _drain(self, steps):
        """Run a step generator to completion under activation."""
        with self._activated():
            while True:
                try:
                    next(steps)
                except StopIteration as stop:
                    return stop.value

    def _select_steps(self, statement: ast.Select, sql: str = ""):
        self._require_loaded()
        self._require_open()
        self._guard_powered()
        mark = len(self.device.usb.log)
        with self.obs.tracer.span("query", category="session") as span:
            if sql:
                # The SQL text passes the redaction gate: constants (which
                # may name hidden values) come out as '?', identifiers stay.
                span.set("sql", " ".join(sql.split()))
            try:
                if sql:
                    self._announce_query(sql)
                bound = Binder(self.core.tree).bind(statement)
                ranked = self.optimizer.optimize(bound)
                result = yield from self.executor.execute_steps(ranked.plan)
            except GhostDBFaultError as exc:
                span.set("aborted", type(exc).__name__)
                self._abort_on_fault(exc)
                raise
            span.set("result_rows", result.row_count)
            self._meter_leakage(mark, span)
        return result

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _run_dml(
        self, statement: ast.Update | ast.Delete, sql: str = ""
    ) -> DmlResult:
        with self._activated():
            return self._run_dml_inner(statement, sql)

    def _dml_steps(self, statement, sql: str = ""):
        return self._run_dml_inner(statement, sql)
        # A rebuild transaction is not preemptible: the scheduler gets
        # exactly one (atomic) step.  The unreachable yield makes this
        # function a generator like _select_steps.
        yield  # pragma: no cover

    def _run_dml_inner(
        self, statement: ast.Update | ast.Delete, sql: str = ""
    ) -> DmlResult:
        """Run one UPDATE or DELETE as an atomic rebuild transaction.

        DML travels the secure channel like appends do -- its text may
        name hidden values, so unlike SELECT it is *not* announced over
        the spied USB link; read-scenario leak signatures are untouched.
        """
        self._require_loaded()
        self._require_open()
        self._guard_powered()
        with self.obs.tracer.span("dml", category="session") as span:
            if sql:
                # Same redaction bar as queries: constants come out as
                # '?' on export, identifiers stay.
                span.set("sql", " ".join(sql.split()))
            try:
                if isinstance(statement, ast.Update):
                    bound = Binder(self.core.tree).bind_update(statement)
                    plan = UpdatePlan(bound)
                else:
                    bound = Binder(self.core.tree).bind_delete(statement)
                    plan = DeletePlan(bound)
                result = self.executor.execute_dml(plan, self.core.site)
            except GhostDBFaultError as exc:
                span.set("aborted", type(exc).__name__)
                self._abort_on_fault(exc)
                raise
            span.set("matched", result.matched)
            span.set("changed", result.changed)
        return result

    # ------------------------------------------------------------------
    # Plan-level surfaces
    # ------------------------------------------------------------------

    def query_with_strategy(self, sql: str, strategy: Strategy) -> QueryResult:
        """Execute with an explicit PRE/POST assignment (the demo GUI's
        ad-hoc plan building)."""
        self._guard_powered()
        with self._activated():
            mark = len(self.device.usb.log)
            with self.obs.tracer.span("query", category="session") as span:
                span.set("sql", " ".join(sql.split()))
                try:
                    self._announce_query(sql)
                    bound = self.bind(sql)
                    span.set("strategy", strategy.label(bound))
                    builder = PlanBuilder(self.core.hidden, bound)
                    plan = builder.build(strategy)
                    self.optimizer.annotate(plan)
                    result = self.executor.execute(plan)
                except GhostDBFaultError as exc:
                    span.set("aborted", type(exc).__name__)
                    self._abort_on_fault(exc)
                    raise
                self._meter_leakage(mark, span)
        return result

    def execute_plan(self, plan: Project) -> QueryResult:
        """Execute a hand-built plan (demo phase 2/3)."""
        self._require_loaded()
        with self._activated():
            return self.executor.execute(plan)

    def rank_plans(self, sql: str) -> list[RankedPlan]:
        """All candidate plans, cheapest estimate first."""
        bound = self.bind(sql)
        return self.optimizer.rank(bound)

    def explain(self, sql: str) -> str:
        """The chosen plan with per-node estimates."""
        from repro.optimizer.explain import explain_plan

        bound = self.bind(sql)
        best = self.optimizer.optimize(bound)
        return explain_plan(best.plan, self.optimizer.cost_model)

    def explain_analyze(self, sql: str) -> tuple[str, QueryResult]:
        """Execute the chosen plan and report estimated vs measured
        statistics per node (plus the result itself)."""
        from repro.optimizer.explain import explain_analyze

        self._guard_powered()
        with self._activated():
            mark = len(self.device.usb.log)
            try:
                self._announce_query(sql)
                bound = self.bind(sql)
                best = self.optimizer.optimize(bound)
                result = self.executor.execute(best.plan)
            except GhostDBFaultError as exc:
                self._abort_on_fault(exc)
                raise
            self._meter_leakage(mark)
        report = explain_analyze(best.plan, self.optimizer.cost_model)
        measured = result.metrics.elapsed_seconds
        if measured > 1e-9:
            estimated = self.optimizer.cost_model.estimate(best.plan).seconds
            self.obs.registry.histogram(
                "ghostdb_optimizer_est_over_meas"
            ).observe(estimated / measured)
        return report, result

    # ------------------------------------------------------------------
    # Leakage
    # ------------------------------------------------------------------

    def _meter_leakage(self, mark: int, span=None) -> None:
        """Profile the boundary traffic one query generated.

        ``mark`` is the USB log length before the query started.  The
        profile feeds the ``ghostdb_leak_*`` metric families and -- as
        numbers only, same bar as every span attribute -- annotates the
        query span, so traces show what each query *looked like* from
        the spy's side of the boundary.
        """
        records = self.device.usb.log[mark:]
        if not records:
            return
        profile = profile_records(records)
        self._last_leak_profile = profile
        self.obs.record_leakage(profile)
        if span is not None:
            span.set("leak_messages", profile.messages)
            span.set("leak_bytes", profile.observable_bytes)
            span.set("leak_ids", profile.ids_observed)
            span.set(
                "leak_entropy_bits", round(profile.shape_entropy_bits, 3)
            )
            span.set("leak_signature", profile.signature_int)

    def leak_scorecard(self) -> TrafficProfile | None:
        """The :class:`~repro.privacy.meter.TrafficProfile` of the last
        metered query, or of the whole captured log when no query ran
        since the last reset.  ``None`` with nothing captured."""
        if self._last_leak_profile is not None:
            return self._last_leak_profile
        records = self.usb_log
        return profile_records(records) if records else None

    @property
    def usb_log(self):
        """This session's captured trust-boundary traffic."""
        if self.lease is None:
            return self.core.device.usb.records()
        return list(self.lease.usb_log)

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def reset_measurements(self) -> None:
        """Zero this session's measurement plane (not the shared
        registry -- other sessions' totals live there too)."""
        self.device.reset_measurements()
        self.obs.tracer.clear()
        self._last_leak_profile = None

    def close(self) -> None:
        """Release the lease back to the core (leased sessions only)."""
        if self.lease is None:
            raise SessionError("the default session cannot be closed")
        if not self.closed:
            self.core.close_session(self)
