"""Public facade: the GhostDB session."""

from repro.core.ghostdb import GhostDB

__all__ = ["GhostDB"]
