"""Session persistence: unplug the key, plug it back in later.

A GhostDB session is a pair of state machines -- the device's flash
image (plus its FTL map and wear counters) and the visible site's store.
Persisting both lets a program close and reopen the "key" with every
byte, index and erase-count intact, which is how the physical artifact
behaves.

The on-disk format is a version-tagged, checksummed pickle of the
session object, written crash-safely:

* the payload is pickled in memory first, then written to a temporary
  file in the target directory, flushed and fsynced, and atomically
  renamed over the destination -- a crash mid-save leaves either the old
  file or the new one, never a torn mix;
* the header carries the payload length and a CRC32, both verified on
  load *before* any unpickling, so a truncated or bit-flipped file
  raises :class:`PersistenceError` instead of feeding garbage to pickle.

That is appropriate here because the file *is* the device: on real
hardware the flash image lives inside the tamper-resistant chip and
never leaves it; in the simulation, the file inherits whatever
protection the host gives it.  Do not load session files from untrusted
sources (standard pickle caveat -- the CRC detects corruption, not
malice).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import zlib

from repro.obs.log import get_logger

log = get_logger(__name__)

MAGIC = b"GHOSTDB-SESSION"
#: v3: the session pickles as a DeviceCore + SessionContext graph
#: (multi-session split); v2 monolithic files are refused.
VERSION = 3

#: Header after MAGIC: version (2 B) + payload length (8 B) + CRC32 (4 B).
_LEN_BYTES = 8
_CRC_BYTES = 4


class PersistenceError(RuntimeError):
    """The file is not a loadable GhostDB session."""


def save_session(session, path: str) -> None:
    """Write the whole session (device + visible site) to ``path``."""
    from repro.core.ghostdb import GhostDB

    if not isinstance(session, GhostDB):
        raise PersistenceError("only GhostDB sessions can be saved")
    payload = pickle.dumps(session, protocol=pickle.HIGHEST_PROTOCOL)
    header = (
        MAGIC
        + VERSION.to_bytes(2, "big")
        + len(payload).to_bytes(_LEN_BYTES, "big")
        + zlib.crc32(payload).to_bytes(_CRC_BYTES, "big")
    )
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=".ghostdb-session-", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(header)
            f.write(payload)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    log.info("saved session to %s (%d B payload)", path, len(payload))


def load_session(path: str):
    """Reopen a session saved by :func:`save_session`.

    The header's length and CRC are verified before unpickling; any
    mismatch (truncation, bit rot) raises :class:`PersistenceError`.
    """
    from repro.core.ghostdb import GhostDB

    with open(path, "rb") as f:
        magic = f.read(len(MAGIC))
        if magic != MAGIC:
            raise PersistenceError(
                f"{path!r} is not a GhostDB session file"
            )
        version = int.from_bytes(f.read(2), "big")
        if version != VERSION:
            raise PersistenceError(
                f"unsupported session format version {version}"
            )
        length_raw = f.read(_LEN_BYTES)
        crc_raw = f.read(_CRC_BYTES)
        if len(length_raw) != _LEN_BYTES or len(crc_raw) != _CRC_BYTES:
            raise PersistenceError(f"{path!r} is truncated (header)")
        length = int.from_bytes(length_raw, "big")
        crc = int.from_bytes(crc_raw, "big")
        payload = f.read(length + 1)
        if len(payload) != length:
            raise PersistenceError(
                f"{path!r} is truncated or padded: header announces "
                f"{length} B, file holds {len(payload)}"
            )
        if zlib.crc32(payload) != crc:
            raise PersistenceError(
                f"{path!r} failed its checksum; the file is corrupted"
            )
        session = pickle.loads(payload)
    if not isinstance(session, GhostDB):
        raise PersistenceError("file did not contain a GhostDB session")
    log.info("loaded session from %s", path)
    return session
