"""Session persistence: unplug the key, plug it back in later.

A GhostDB session is a pair of state machines -- the device's flash
image (plus its FTL map and wear counters) and the visible site's store.
Persisting both lets a program close and reopen the "key" with every
byte, index and erase-count intact, which is how the physical artifact
behaves.

The on-disk format is a version-tagged pickle of the session object.
That is appropriate here because the file *is* the device: on real
hardware the flash image lives inside the tamper-resistant chip and
never leaves it; in the simulation, the file inherits whatever
protection the host gives it.  Do not load session files from untrusted
sources (standard pickle caveat).
"""

from __future__ import annotations

import pickle

from repro.obs.log import get_logger

log = get_logger(__name__)

MAGIC = b"GHOSTDB-SESSION"
VERSION = 1


class PersistenceError(RuntimeError):
    """The file is not a loadable GhostDB session."""


def save_session(session, path: str) -> None:
    """Write the whole session (device + visible site) to ``path``."""
    from repro.core.ghostdb import GhostDB

    if not isinstance(session, GhostDB):
        raise PersistenceError("only GhostDB sessions can be saved")
    with open(path, "wb") as f:
        f.write(MAGIC)
        f.write(VERSION.to_bytes(2, "big"))
        pickle.dump(session, f, protocol=pickle.HIGHEST_PROTOCOL)
    log.info("saved session to %s", path)


def load_session(path: str):
    """Reopen a session saved by :func:`save_session`."""
    from repro.core.ghostdb import GhostDB

    with open(path, "rb") as f:
        magic = f.read(len(MAGIC))
        if magic != MAGIC:
            raise PersistenceError(
                f"{path!r} is not a GhostDB session file"
            )
        version = int.from_bytes(f.read(2), "big")
        if version != VERSION:
            raise PersistenceError(
                f"unsupported session format version {version}"
            )
        session = pickle.load(f)
    if not isinstance(session, GhostDB):
        raise PersistenceError("file did not contain a GhostDB session")
    log.info("loaded session from %s", path)
    return session
