"""One canonical way to stand up a demo-schema session.

Every entry point used to repeat the same construction litany --
build a :class:`SessionConfig`, instantiate :class:`GhostDB`, run the
demo DDL, generate the synthetic medical dataset, load it, maybe attach
faults -- with the kwargs drifting slightly between copies.
:func:`build_session` is that litany, once; the shell, ``bench``,
``soak``, ``doctor``, ``leakmeter`` and ``serve`` all call it.
"""

from __future__ import annotations

from repro.core.ghostdb import GhostDB, SessionConfig
from repro.engine.executor import ExecConfig
from repro.hardware.profiles import PROFILES, HardwareProfile


def build_session(
    *,
    scale: int = 10_000,
    profile: str | HardwareProfile = "demo",
    exec_batch: int | None = None,
    cache_pages: int | None = None,
    fault_profile: str | None = None,
    fault_seed: int = 0,
    dump_on_fault: bool = False,
    dump_dir: str = ".",
    max_sessions: int | None = None,
) -> tuple[GhostDB, dict]:
    """Build, populate and load a demo-schema GhostDB.

    ``scale`` is the prescription count fed to the synthetic-data
    generator; ``profile`` is a hardware profile name from
    :data:`~repro.hardware.profiles.PROFILES` (or a profile object).
    ``fault_profile`` of ``None`` or ``"none"`` leaves the device
    healthy.  Returns ``(db, data)`` -- the loaded session and the
    generated plaintext rows (callers feed the latter to
    :class:`~repro.privacy.leakcheck.LeakChecker`).
    """
    from repro.workload.datagen import DatasetConfig, MedicalDataGenerator
    from repro.workload.queries import DEMO_SCHEMA_DDL

    if isinstance(profile, str):
        profile = PROFILES[profile]
    config = SessionConfig(
        exec_config=(
            ExecConfig(exec_batch=max(1, exec_batch))
            if exec_batch is not None
            else None
        ),
        cache_pages=cache_pages,
        fault_seed=fault_seed,
        dump_on_fault=dump_on_fault,
        dump_dir=dump_dir,
    )
    if max_sessions is not None:
        config.max_sessions = max_sessions
    db = GhostDB(profile=profile, config=config)
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    data = MedicalDataGenerator(
        DatasetConfig(n_prescriptions=scale)
    ).generate()
    db.load(data)
    if fault_profile and fault_profile != "none":
        db.set_faults(fault_profile, fault_seed)
    return db, data
