"""Cooperative multi-session scheduling over one simulated device.

One slow USB key, several client terminals: the device can only serve
one request at a time, so concurrency here means *interleaving*, not
parallelism.  The natural preemption point already exists in the
engine -- every operator's :meth:`batches` window boundary, which
:meth:`Executor.execute_steps` surfaces as a ``yield`` -- and the
scheduler simply decides whose window runs next.

Fairness is deficit round-robin (DRR) in **simulated seconds**: each
runnable query accrues one quantum of device time per round and steps
until its deficit is spent; the true cost of each step (measured off
the device clock, which only this session advanced while activated)
is charged against the deficit, and unused deficit carries over.  A
heavy tenant whose windows are expensive therefore gets *fewer*
windows per round, not more -- device time, the contended resource, is
what is equalised.

Everything is driven by the simulated clock and the admission order:
no wall time, no randomness, no thread interleavings.  The same
(sessions, statements, seed) always replays to the identical grant
sequence, which the flight recorder journals (``sched_*`` events) so a
postmortem shows exactly who held the device when.

DML statements are a single atomic step (a rebuild transaction cannot
be preempted mid-flight); SELECTs yield every batch window.  A fault
aborts only the ticket that hit it -- except power loss, which kills
the device out from under everyone: every in-flight ticket is aborted
and torn down, and the core is flagged for remount.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.session import SessionContext, SessionError
from repro.faults import GhostDBFaultError, PowerCutError
from repro.obs import get_logger

log = get_logger(__name__)

#: One DRR quantum in simulated device seconds.  Around 5 ms: a few
#: flash page reads, so light queries finish within a round or two while
#: scan-heavy windows still cannot monopolise the device.
DEFAULT_QUANTUM_S = 0.005


def jain_index(values) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly even; ``1/n`` means one value took everything.
    Degenerate inputs (no values, all zero) count as fair.
    """
    values = [float(v) for v in values]
    if not values:
        return 1.0
    square_sum = sum(v * v for v in values)
    if square_sum == 0.0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


@dataclass
class QueryTicket:
    """One submitted statement's lifecycle under the scheduler.

    Timestamps are simulated seconds on the *device* clock (the global
    interleaved timeline), so ``latency_s`` is what the client waited,
    queueing included; the session's private clock holds its pure
    service time.
    """

    index: int
    session: str
    sql: str
    submitted_at: float
    started_at: float | None = None
    completed_at: float | None = None
    #: Batch windows granted (DML counts as one).
    steps: int = 0
    result: object = None
    error: BaseException | None = None

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def latency_s(self) -> float | None:
        """Simulated submit-to-complete latency, queueing included."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


@dataclass
class _Runner:
    ticket: QueryTicket
    session: SessionContext
    gen: object
    deficit: float = 0.0


@dataclass
class Scheduler:
    """Deficit-round-robin interleaver for leased sessions.

    Usage::

        sched = Scheduler(db.core)
        t1 = sched.submit(alice, "SELECT ...")
        t2 = sched.submit(bob, "SELECT ...")
        sched.run()          # drives both to completion, interleaved
        t1.result.rows       # bit-identical to a serial run

    ``submit`` builds the statement's step generator but runs nothing;
    ``run`` interleaves all pending tickets to completion.  Submitting
    more and calling ``run`` again is fine -- ticket numbering and the
    flight journal continue.
    """

    core: object
    quantum_s: float = DEFAULT_QUANTUM_S
    tickets: list[QueryTicket] = field(default_factory=list)
    _runners: list[_Runner] = field(default_factory=list)

    def submit(self, session: SessionContext, sql: str) -> QueryTicket:
        """Enqueue one statement on a leased session."""
        if session.lease is None:
            raise SessionError(
                "only leased sessions are schedulable; open one with "
                "open_session()"
            )
        if session.core is not self.core:
            raise SessionError(
                f"session {session.name!r} belongs to a different device"
            )
        ticket = QueryTicket(
            index=len(self.tickets),
            session=session.name,
            sql=sql,
            submitted_at=self.core.device.clock.now,
        )
        self.tickets.append(ticket)
        # Parse/validate now so an unsupported statement fails at
        # submit, not mid-schedule.
        gen = session.statement_steps(sql)
        self._runners.append(_Runner(ticket=ticket, session=session, gen=gen))
        self.core.obs.flight.record(
            "sched_submit", ticket=ticket.index, session=session.name
        )
        return ticket

    @property
    def pending(self) -> int:
        return len(self._runners)

    def run(self) -> list[QueryTicket]:
        """Interleave every pending ticket to completion; returns all
        tickets ever submitted (completed ones included)."""
        while self._runners:
            for runner in list(self._runners):
                if runner not in self._runners:
                    continue  # aborted by a power cut this round
                runner.deficit += self.quantum_s
                self._service(runner)
        return self.tickets

    # ------------------------------------------------------------------

    def _service(self, runner: _Runner) -> None:
        """Step one runner until its deficit is spent or it finishes."""
        core = self.core
        clock = core.device.clock
        flight = core.obs.flight
        ticket = runner.ticket
        if ticket.started_at is None:
            ticket.started_at = clock.now
            flight.record(
                "sched_start", ticket=ticket.index, session=ticket.session
            )
        while runner.deficit > 0.0:
            before = clock.now
            try:
                with core.activated(runner.session.lease):
                    next(runner.gen)
            except StopIteration as stop:
                ticket.result = stop.value
                self._finish(runner, clock.now)
                return
            except GhostDBFaultError as exc:
                self._abort(runner, exc, clock.now)
                if isinstance(exc, PowerCutError):
                    self._abort_survivors(exc, clock.now)
                return
            except Exception as exc:
                # A statement error (bad binding, unknown table...) is
                # the submitting session's problem, never the device's:
                # abort that ticket alone and keep scheduling.  Callers
                # that want the exception re-raise ``ticket.error``.
                self._abort(runner, exc, clock.now)
                return
            ticket.steps += 1
            runner.deficit -= clock.now - before

    def _finish(self, runner: _Runner, now: float) -> None:
        ticket = runner.ticket
        ticket.steps += 1
        ticket.completed_at = now
        self._runners.remove(runner)
        core = self.core
        core.obs.flight.record(
            "sched_done",
            ticket=ticket.index,
            session=ticket.session,
            steps=ticket.steps,
        )
        registry = core.obs.registry
        registry.counter("ghostdb_session_queries_total").inc(
            session=ticket.session
        )
        registry.counter("ghostdb_session_steps_total").inc(
            ticket.steps, session=ticket.session
        )
        metrics = getattr(ticket.result, "metrics", None)
        if metrics is not None:
            registry.counter("ghostdb_session_sim_seconds_total").inc(
                metrics.elapsed_seconds, session=ticket.session
            )
        registry.gauge("ghostdb_session_ram_high_water_bytes").set_max(
            runner.session.lease.ram.high_water, session=ticket.session
        )

    def _abort(self, runner: _Runner, exc: BaseException, now: float) -> None:
        ticket = runner.ticket
        ticket.error = exc
        ticket.completed_at = now
        self._runners.remove(runner)
        self.core.obs.flight.record(
            "sched_abort",
            ticket=ticket.index,
            session=ticket.session,
            reason=type(exc).__name__,
        )
        self.core.obs.registry.counter("ghostdb_session_aborts_total").inc(
            session=ticket.session
        )

    def _abort_survivors(self, cause: PowerCutError, now: float) -> None:
        """Power loss killed the device under every in-flight query:
        tear each one down (releasing its reservations into its own
        lease) and mark its ticket aborted."""
        for other in list(self._runners):
            try:
                with self.core.activated(other.session.lease):
                    other.gen.close()
            except GhostDBFaultError:
                pass  # teardown tripped the dead device again
            self._abort(other, cause, now)
