"""Hardware profiles: the constants that define a smart USB device.

The paper (Section 3) characterises the target platform:

* secure chip with a 32-bit RISC processor and *tens of KB* of static RAM;
* gigabyte-sized external NAND flash whose writes are 3-10x slower than
  reads (full-page vs single-word reads differ too) and which forbids
  writes in place;
* USB 2.0 full-speed link at 12 Mb/s, with high speed (480 Mb/s)
  "envisioned for future platforms".

A :class:`HardwareProfile` bundles those constants.  :data:`DEMO_DEVICE` is
the paper's platform; the other profiles support the ablation benchmarks
(harsher flash asymmetry, the envisioned high-speed link, and an even
smaller RAM for stress tests).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class HardwareProfile:
    """All timing/sizing constants of a simulated smart USB device."""

    name: str
    #: Secure-chip static RAM available to the query engine, in bytes.
    ram_bytes: int
    #: NAND flash page size in bytes (unit of read/program).
    page_size: int
    #: Pages per erase block.
    pages_per_block: int
    #: Number of erase blocks (page_size * pages_per_block * num_blocks
    #: total flash capacity).
    num_blocks: int
    #: Seconds to read one full page.
    flash_read_full_s: float
    #: Seconds to read a small portion (single word .. few bytes) of a page.
    flash_read_partial_s: float
    #: Seconds to program one page (out of place).
    flash_write_s: float
    #: Seconds to erase one block.
    flash_erase_s: float
    #: USB link raw throughput, bits per second.
    usb_bits_per_s: float
    #: Fixed per-message USB cost (framing, turnaround), seconds.
    usb_setup_s: float
    #: Secure-chip CPU clock, Hz.
    cpu_hz: float
    #: Program/erase cycles a block endures before wearing out.  ``None``
    #: disables wear-out (the default for benchmarks; tests enable it).
    max_erase_cycles: int | None = None

    @property
    def block_size(self) -> int:
        return self.page_size * self.pages_per_block

    @property
    def flash_bytes(self) -> int:
        return self.block_size * self.num_blocks

    @property
    def write_read_ratio(self) -> float:
        """Flash write/read cost asymmetry (the paper's 3-10x)."""
        return self.flash_write_s / self.flash_read_full_s

    def with_overrides(self, **changes) -> "HardwareProfile":
        """A copy of this profile with some constants replaced."""
        return replace(self, **changes)


#: The paper's demo platform: 64 KB RAM secure chip, 1 GB NAND flash with a
#: 3x write/read page cost ratio, USB 2.0 full speed (12 Mb/s), 50 MHz RISC.
DEMO_DEVICE = HardwareProfile(
    name="demo-device",
    ram_bytes=64 * 1024,
    page_size=2048,
    pages_per_block=64,
    num_blocks=8192,  # 1 GiB
    flash_read_full_s=80e-6,
    flash_read_partial_s=25e-6,
    flash_write_s=240e-6,  # 3x full-page read
    flash_erase_s=1.5e-3,
    usb_bits_per_s=12e6,
    usb_setup_s=1e-3,
    cpu_hz=50e6,
)

#: Worst-case flash asymmetry the paper quotes: writes 10x reads.
HARSH_FLASH_DEVICE = DEMO_DEVICE.with_overrides(
    name="harsh-flash-device",
    flash_write_s=800e-6,
)

#: The "envisioned future platform" with USB 2.0 high speed (480 Mb/s).
HIGH_SPEED_DEVICE = DEMO_DEVICE.with_overrides(
    name="high-speed-device",
    usb_bits_per_s=480e6,
)

#: A deliberately starved device (16 KB RAM) for RAM-pressure stress tests.
TINY_DEVICE = DEMO_DEVICE.with_overrides(
    name="tiny-device",
    ram_bytes=16 * 1024,
)

#: The named profiles surfaces accept (``--profile`` on the CLI, the
#: bench runner's config): short alias -> profile.
PROFILES = {
    "demo": DEMO_DEVICE,
    "harsh-flash": HARSH_FLASH_DEVICE,
    "high-speed": HIGH_SPEED_DEVICE,
    "tiny": TINY_DEVICE,
}
