"""Simulated time accounting shared by every hardware component.

The GhostDB demo reports execution times in seconds of *device* time
(Figure 6).  Real wall-clock time of this Python process is meaningless for
that purpose, so each hardware component charges the simulated cost of its
operations into a single :class:`SimClock`.  The clock keeps a per-category
breakdown (flash reads vs writes vs erases, USB transfer, CPU) which the
benchmarks report alongside the total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Canonical charge categories.  Components may only charge these, so the
#: breakdown is stable across the whole code base.
CATEGORIES = (
    "flash_read",
    "flash_write",
    "flash_erase",
    "usb",
    "cpu",
)


@dataclass
class TimeBreakdown:
    """Immutable snapshot of a clock's per-category totals, in seconds."""

    flash_read: float = 0.0
    flash_write: float = 0.0
    flash_erase: float = 0.0
    usb: float = 0.0
    cpu: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.flash_read
            + self.flash_write
            + self.flash_erase
            + self.usb
            + self.cpu
        )

    def __sub__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            flash_read=self.flash_read - other.flash_read,
            flash_write=self.flash_write - other.flash_write,
            flash_erase=self.flash_erase - other.flash_erase,
            usb=self.usb - other.usb,
            cpu=self.cpu - other.cpu,
        )

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            flash_read=self.flash_read + other.flash_read,
            flash_write=self.flash_write + other.flash_write,
            flash_erase=self.flash_erase + other.flash_erase,
            usb=self.usb + other.usb,
            cpu=self.cpu + other.cpu,
        )

    def as_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in CATEGORIES}


@dataclass
class SimClock:
    """Accumulates simulated seconds, broken down by charge category."""

    _totals: dict[str, float] = field(
        default_factory=lambda: {name: 0.0 for name in CATEGORIES}
    )
    #: Optional secondary clock that receives a copy of every charge.
    #: Session multiplexing points this at the active session's private
    #: clock, so a leased session accumulates exactly the charge
    #: sequence it would see running alone (starting from zero) while
    #: the device clock keeps the global interleaved timeline.  Tees do
    #: not chain: the teed clock's own ``tee`` is ignored here.
    tee: "SimClock | None" = None

    def advance(self, seconds: float, category: str) -> None:
        """Charge ``seconds`` of simulated time to ``category``.

        Raises ``ValueError`` for unknown categories or negative charges so
        accounting bugs surface immediately instead of skewing benchmarks.
        """
        if category not in self._totals:
            raise ValueError(f"unknown clock category: {category!r}")
        if seconds < 0:
            raise ValueError(f"negative time charge: {seconds!r}")
        self._totals[category] += seconds
        if self.tee is not None:
            self.tee._totals[category] += seconds

    @property
    def now(self) -> float:
        """Total simulated seconds elapsed."""
        return sum(self._totals.values())

    @property
    def totals(self) -> dict[str, float]:
        """Live per-category totals (read-only by convention).

        The dict object is stable across :meth:`reset`, so hot paths may
        hold a reference instead of re-fetching snapshots.
        """
        return self._totals

    def breakdown(self) -> TimeBreakdown:
        """A snapshot of the per-category totals."""
        return TimeBreakdown(**self._totals)

    def reset(self) -> None:
        for name in self._totals:
            self._totals[name] = 0.0
