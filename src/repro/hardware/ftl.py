"""Log-structured flash translation layer (FTL).

NAND flash precludes in-place writes, so updating a logical page means
programming its new content somewhere else and remembering the new
location.  This FTL does what the firmware of a real smart USB device
does:

* maintains a logical-page -> physical-page map;
* serves writes out of place, appending to the currently open block
  (log-structured), marking the previous physical page *stale*;
* garbage-collects when free blocks run low: victim selection is
  *wear-aware* -- a block's staleness score is discounted by how far its
  erase count exceeds the coolest candidate's (``wear_penalty`` stale
  pages of priority per excess cycle), so hot blocks rest while cool
  ones take erases and the erase-count spread stays bounded;
* models endurance: a block that trips ``max_erase_cycles`` becomes a
  *grown bad block* (:class:`~repro.hardware.flash.WearOutError`) and is
  retired from rotation like any other bad block;
* degrades gracefully instead of dying.  The ladder: under GC pressure
  (free space below ``throttle_threshold`` of usable capacity) every
  logical write is *throttled* -- charged extra simulated time, the
  firmware analogue of foreground GC stalls; when even garbage
  collection cannot restore the spare-block floor the FTL freezes into
  a typed read-only mode and every write raises
  :class:`DeviceReadOnlyError`.  Reads, and host-side ``free()``, keep
  working; :class:`FlashFullError` never escapes to callers.

Query-engine code above this layer sees stable logical page numbers and
never worries about erases -- but it *pays* for them in simulated time,
which is exactly the write-amplification effect the paper's RAM/flash-aware
algorithms are designed around.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.hardware.flash import (
    BadBlockError,
    FlashError,
    NandFlash,
    ProgramFailedError,
    WearOutError,
)
from repro.hardware.pagecache import PageCache


class FlashFullError(FlashError):
    """No free flash space remains even after garbage collection.

    Internal to the FTL: every raise site is contained inside the write
    path and converted into the typed read-only transition
    (:class:`DeviceReadOnlyError`), so callers never see this escape.
    """


class DeviceReadOnlyError(FlashError):
    """The device froze into read-only mode to protect its data.

    Raised by :meth:`FlashTranslationLayer.write` once spare blocks fall
    below the floor and garbage collection cannot restore them (flash
    full of live data, or too many blocks worn out / grown bad).  Reads
    keep working; the mode is sticky for the life of the mount.  This is
    the loud, typed bottom rung of the write-degradation ladder --
    never a bare :class:`FlashFullError` escaping mid-GC.
    """


@dataclass
class FtlStats:
    """FTL-level counters (physical effects of logical writes)."""

    logical_writes: int = 0
    gc_runs: int = 0
    gc_relocations: int = 0


@dataclass
class FlashTranslationLayer:
    """Logical page store over a raw :class:`NandFlash`."""

    flash: NandFlash
    #: Blocks kept in reserve so GC always has somewhere to relocate to.
    spare_blocks: int = 2
    #: Victim selection discounts a candidate's staleness score by this
    #: many stale pages per erase cycle it sits above the coolest
    #: candidate, trading reclaim efficiency for wear levelling.
    wear_penalty: int = 1
    #: First rung of the degradation ladder: when free space (stale
    #: pages included) drops below this fraction of usable capacity --
    #: healthy blocks minus the spare reserve -- every logical write
    #: pays ``throttle_factor`` extra write-times of simulated latency,
    #: modelling foreground GC stalls.
    throttle_threshold: float = 0.10
    #: Extra simulated write-times charged per throttled logical write.
    throttle_factor: float = 4.0
    #: Optional buffer pool over *logical* pages.  Sitting above the
    #: logical->physical map means GC relocations need no invalidation
    #: (content is unchanged); only :meth:`write` and :meth:`free` do.
    cache: PageCache | None = None
    #: Every session's page cache, active or not.  A write or free by
    #: one session must invalidate the logical page in *all* caches over
    #: this FTL, not just the currently-swapped-in one, or a dormant
    #: session resumes with a stale copy.  The device core maintains the
    #: list; single-session devices leave it empty.
    peer_caches: list[PageCache] = field(default_factory=list)
    #: Optional session flight recorder; journals remaps and recovery
    #: scans for postmortems.  Host-side diagnostic state only.
    flight: object | None = None
    stats: FtlStats = field(default_factory=FtlStats)
    _map: dict[int, int] = field(default_factory=dict)  # logical -> physical
    _reverse: dict[int, int] = field(default_factory=dict)  # physical -> logical
    _stale: set[int] = field(default_factory=set)  # physical pages
    _free_blocks: deque[int] = field(default_factory=deque)
    _open_block: int | None = None
    _next_in_open: int = 0
    _next_logical: int = 0
    _free_logical: list[int] = field(default_factory=list)
    _in_gc: bool = False
    #: Second rung of the ladder: sticky (per mount) read-only latch.
    read_only: bool = False
    read_only_reason: str = ""
    _throttled: bool = False
    #: Monotonic write sequence stamped into each page's spare area; the
    #: recovery scan keeps, per logical page, the copy with the highest
    #: sequence whose CRC verifies.
    _next_seq: int = 0

    def __post_init__(self) -> None:
        if not self._free_blocks:
            self._free_blocks = deque(range(self.flash.profile.num_blocks))

    # ------------------------------------------------------------------
    # Logical page lifecycle
    # ------------------------------------------------------------------

    def allocate(self) -> int:
        """Allocate a fresh logical page number (no flash I/O yet)."""
        if self._free_logical:
            return self._free_logical.pop()
        lpage = self._next_logical
        self._next_logical += 1
        return lpage

    def free(self, lpage: int) -> None:
        """Release a logical page; its physical copy becomes garbage."""
        self._invalidate_everywhere(lpage)
        phys = self._map.pop(lpage, None)
        if phys is not None:
            self._reverse.pop(phys, None)
            self._stale.add(phys)
        self._free_logical.append(lpage)

    def _invalidate_everywhere(self, lpage: int) -> None:
        """Drop ``lpage`` from the active cache and every peer cache."""
        if self.cache is not None:
            self.cache.invalidate(lpage)
        for peer in self.peer_caches:
            if peer is not self.cache:
                peer.invalidate(lpage)

    def is_mapped(self, lpage: int) -> bool:
        return lpage in self._map

    def mapped_lpages(self) -> set[int]:
        """Snapshot of every mapped logical page number.

        Used by the engine's rebuild transactions (to free exactly the
        pages a failed build orphaned) and by the mount-time orphan
        sweep / soak invariants (map == pages the catalog references).
        """
        return set(self._map)

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------

    def read(self, lpage: int, offset: int = 0, length: int | None = None) -> bytes:
        """Read from a logical page previously written.

        Full-page reads are served from (and admitted to) the buffer
        pool when one is attached; partial reads may hit a cached page
        for free but never change cache state.  A hit skips the physical
        read entirely -- no simulated-time charge, no flash counter, no
        fault decision -- exactly as a device-RAM copy would.
        """
        phys = self._map.get(lpage)
        if phys is None:
            raise FlashError(f"logical page {lpage} has never been written")
        cache = self.cache
        if cache is None or not cache.enabled:
            return self.flash.read(phys, offset, length)
        page_size = self.flash.profile.page_size
        full = offset == 0 and (length is None or length >= page_size)
        cached = cache.lookup(lpage, promote=full)
        if cached is not None:
            if length is None:
                length = page_size - offset
            if offset < 0 or length < 0 or offset + length > page_size:
                raise FlashError(
                    f"read of [{offset}, {offset + length}) exceeds page size"
                )
            return cached[offset : offset + length]
        data = self.flash.read(phys, offset, length)
        if full:
            cache.admit(lpage, data)
        return data

    def write(self, lpage: int, data: bytes) -> None:
        """Write (or overwrite) a logical page, out of place.

        Raises :class:`DeviceReadOnlyError` once the device has frozen
        writes; while under GC pressure the write is throttled (extra
        simulated latency) before being programmed.
        """
        if self.read_only:
            raise DeviceReadOnlyError(
                self.read_only_reason or "device is read-only"
            )
        self._invalidate_everywhere(lpage)
        self._charge_throttle()
        self._program_page(lpage, data)
        self.stats.logical_writes += 1

    def _charge_throttle(self) -> None:
        """First ladder rung: price GC pressure into every write.

        The pressure signal is the fraction of *usable* capacity (healthy
        blocks minus the spare reserve) still free, counting stale pages
        as reclaimable.  It decays monotonically to ~0 at the read-only
        point, so the throttle always engages before the latch.
        """
        profile = self.flash.profile
        per_block = profile.pages_per_block
        healthy = profile.num_blocks - self.flash.bad_block_count
        usable = (healthy - self.spare_blocks) * per_block
        if usable <= 0:
            return
        reserve = self.spare_blocks * per_block
        free = max(0, self.free_pages_estimate - reserve)
        engaged = free < usable * self.throttle_threshold
        if engaged != self._throttled:
            self._throttled = engaged
            if self.flight is not None:
                self.flight.record(
                    "ftl_throttle",
                    engaged=engaged,
                    free_pages=free,
                    usable_pages=usable,
                )
        if not engaged:
            return
        stall = self.throttle_factor * profile.flash_write_s
        self.flash.clock.advance(stall, "flash_write")
        if self.flash.metrics is not None:
            self.flash.metrics.counter(
                "ghostdb_ftl_throttle_writes_total"
            ).inc()
            self.flash.metrics.counter(
                "ghostdb_ftl_throttle_seconds_total"
            ).inc(stall)

    def _program_page(self, lpage: int, data: bytes) -> int:
        """Program ``lpage``'s new content somewhere, surviving torn
        writes and bad blocks by remapping; returns the physical page.

        The spare area is stamped with ``(lpage, seq)`` *before* the old
        mapping is released, so a power cut at any point leaves either
        the old committed copy or a newer valid copy winning the
        recovery scan -- never neither.
        """
        while True:
            phys = self._claim_physical_page()
            seq = self._next_seq
            self._next_seq += 1
            try:
                self.flash.program(phys, data, oob=(lpage, seq))
            except ProgramFailedError:
                # Torn page: garbage with an invalid CRC.  Leave it for
                # GC and retry on the next physical page.
                self._stale.add(phys)
                self._remap_count("torn")
                continue
            except BadBlockError:
                # The open block just went bad.  Its programmed pages
                # are still readable (mappings stay valid); its unused
                # tail is abandoned and the block leaves the rotation.
                self._open_block = None
                self._next_in_open = 0
                self._remap_count("bad_block")
                continue
            old = self._map.get(lpage)
            if old is not None and old != phys:
                self._reverse.pop(old, None)
                self._stale.add(old)
            self._map[lpage] = phys
            self._reverse[phys] = lpage
            return phys

    def _remap_count(self, reason: str) -> None:
        if self.flash.metrics is not None:
            self.flash.metrics.counter("ghostdb_flash_remaps_total").inc(
                reason=reason
            )
        if self.flight is not None:
            self.flight.record("ftl_remap", reason=reason)

    # ------------------------------------------------------------------
    # Space management
    # ------------------------------------------------------------------

    def _claim_physical_page(self) -> int:
        per_block = self.flash.profile.pages_per_block
        if self._open_block is None or self._next_in_open >= per_block:
            self._open_next_block()
        page = self._open_block * per_block + self._next_in_open
        self._next_in_open += 1
        return page

    def _open_next_block(self) -> None:
        if len(self._free_blocks) <= self.spare_blocks and not self._in_gc:
            self._collect_garbage()
            # GC relocations may themselves have opened a fresh block;
            # abandoning it here would leak its unwritten tail forever.
            if (
                self._open_block is not None
                and self._next_in_open < self.flash.profile.pages_per_block
            ):
                return
        if not self._free_blocks:
            if self._in_gc:
                # Mid-relocation exhaustion: surface internally and let
                # _collect_garbage convert it into the read-only latch.
                raise FlashFullError(
                    "flash exhausted while relocating live pages"
                )
            raise self._enter_read_only(
                "flash is full and GC reclaimed nothing"
            )
        self._open_block = self._free_blocks.popleft()
        self._next_in_open = 0

    def _collect_garbage(self) -> None:
        """Erase stale-heavy blocks until the spare threshold is restored.

        A single victim can cost more blocks than it frees (its live
        pages need somewhere to go), so GC keeps going until free space
        is comfortably above the spare watermark or nothing reclaimable
        remains.  Exhaustion -- no reclaimable block, or free space
        running out *mid-relocation* -- never escapes as
        :class:`FlashFullError`; it latches the device read-only and
        raises :class:`DeviceReadOnlyError` instead.
        """
        self._in_gc = True
        try:
            while len(self._free_blocks) <= self.spare_blocks:
                victim = self._pick_victim_block()
                if victim is None:
                    if not self._free_blocks:
                        raise self._enter_read_only(
                            "flash is full: no block has any stale page "
                            "to reclaim"
                        )
                    return
                self._reclaim_block(victim)
        except FlashFullError as exc:
            # A relocation inside _reclaim_block ran the log dry.  Every
            # live page is still mapped (either at its old physical page
            # or its relocated copy), so data is intact -- but the
            # device can no longer guarantee forward progress: latch.
            raise self._enter_read_only(str(exc)) from exc
        finally:
            self._in_gc = False

    def _enter_read_only(self, reason: str) -> DeviceReadOnlyError:
        """Latch the read-only mode; returns the error for ``raise``."""
        if not self.read_only:
            self.read_only = True
            self.read_only_reason = f"device is read-only: {reason}"
            if self.flash.metrics is not None:
                self.flash.metrics.counter(
                    "ghostdb_ftl_readonly_transitions_total"
                ).inc()
            if self.flight is not None:
                self.flight.record(
                    "ftl_read_only",
                    reason=reason,
                    free_blocks=len(self._free_blocks),
                    bad_blocks=self.flash.bad_block_count,
                    max_wear=self.flash.max_wear,
                )
        return DeviceReadOnlyError(self.read_only_reason)

    def _reclaim_block(self, victim: int) -> None:
        """Relocate a victim block's live pages and erase it.

        Relocation leaves the map consistent at every step: a live page
        keeps its old mapping until ``_program_page`` commits the new
        copy, so an error mid-relocation (bad block, exhaustion, power
        cut) loses nothing -- every logical page still resolves to a
        valid physical copy.
        """
        self.stats.gc_runs += 1
        per_block = self.flash.profile.pages_per_block
        first = victim * per_block
        relocated = 0
        for phys in range(first, first + per_block):
            lpage = self._reverse.get(phys)
            if lpage is None:
                self._stale.discard(phys)
                continue
            # Relocate a still-valid page: read it and append elsewhere
            # with a fresh sequence number, so even if power dies before
            # the erase below, recovery prefers the relocated copy.  The
            # old mapping is released by _program_page only once the new
            # copy committed.
            data = self.flash.read(phys)
            self._program_page(lpage, data)
            relocated += 1
        self.stats.gc_relocations += relocated
        try:
            self.flash.erase_block(victim)
        except WearOutError:
            # The erase tripped the endurance limit: the block is now a
            # grown bad block.  Everything in it is garbage or already
            # relocated; retire it from the rotation for good.
            for phys in range(first, first + per_block):
                self._stale.discard(phys)
            self._remap_count("wear_out")
            if self.flash.metrics is not None:
                self.flash.metrics.counter(
                    "ghostdb_ftl_wear_bad_blocks_total"
                ).inc()
            if self.flight is not None:
                self.flight.record(
                    "ftl_wear_bad_block",
                    block=victim,
                    erase_cycles=self.flash.erase_count(victim),
                    bad_blocks=self.flash.bad_block_count,
                )
            self._update_wear_metrics()
            return
        except BadBlockError:
            # The block died on erase.  Everything in it is garbage or
            # already relocated; retire it from the rotation for good.
            for phys in range(first, first + per_block):
                self._stale.discard(phys)
            self._remap_count("bad_block")
            return
        for phys in range(first, first + per_block):
            self._stale.discard(phys)
        self._free_blocks.append(victim)
        if self.flight is not None:
            self.flight.record(
                "ftl_gc",
                victim=victim,
                relocated=relocated,
                erase_cycles=self.flash.erase_count(victim),
                free_blocks=len(self._free_blocks),
            )
        self._update_wear_metrics()

    def _update_wear_metrics(self) -> None:
        """Publish the wear picture after an erase attempt."""
        metrics = self.flash.metrics
        if metrics is None:
            return
        flash = self.flash
        counts = [
            flash.erase_count(block)
            for block in range(flash.profile.num_blocks)
            if not flash.is_bad(block)
        ]
        max_wear = flash.max_wear
        metrics.gauge("ghostdb_ftl_wear_max_erase_cycles").set(max_wear)
        metrics.gauge("ghostdb_ftl_wear_spread").set(
            max(counts, default=0) - min(counts, default=0)
        )

    def _pick_victim_block(self) -> int | None:
        """The best-scoring closed block whose live pages fit the GC
        workspace.

        A candidate's score is its stale-page count discounted by
        ``wear_penalty`` for every erase cycle it sits above the coolest
        candidate, so reclaim efficiency (most garbage per erase) is
        traded off against wear levelling (erases steered toward
        low-cycle blocks).  Ties prefer the cooler, then the
        lower-numbered block -- fully deterministic.

        Relocations consume free pages; choosing a victim with more live
        pages than the remaining workspace would deadlock the collector
        mid-move, so such blocks only become eligible once earlier
        erases have widened the workspace.
        """
        per_block = self.flash.profile.pages_per_block
        stale_per_block: dict[int, int] = {}
        for phys in self._stale:
            block = phys // per_block
            if block == self._open_block:
                continue
            stale_per_block[block] = stale_per_block.get(block, 0) + 1
        if not stale_per_block:
            return None
        live_per_block: dict[int, int] = {}
        for phys in self._reverse:
            block = phys // per_block
            if block in stale_per_block:
                live_per_block[block] = live_per_block.get(block, 0) + 1
        open_room = 0
        if self._open_block is not None:
            open_room = per_block - self._next_in_open
        workspace = len(self._free_blocks) * per_block + open_room
        candidates = [
            block
            for block, stale in stale_per_block.items()
            if live_per_block.get(block, 0) + 1 <= workspace
        ]
        if not candidates:
            return None
        erase_count = self.flash.erase_count
        coolest = min(erase_count(block) for block in candidates)

        def preference(block: int) -> tuple[int, int, int]:
            wear = erase_count(block)
            score = stale_per_block[block] - self.wear_penalty * (
                wear - coolest
            )
            return (score, -wear, -block)

        return max(candidates, key=preference)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        flash: NandFlash,
        spare_blocks: int = 2,
        flight=None,
    ) -> "FlashTranslationLayer":
        """Rebuild an FTL from the spare-area journal after power loss.

        The scan reads every programmed page's spare area (charged as
        one partial read each -- the OOB area is a few bytes), keeps the
        highest-sequence copy with a valid CRC per logical page, and
        marks everything else (torn pages, superseded copies) stale for
        GC.  Because writes stamp the new copy before releasing the old
        one, and GC relocates with fresh sequence numbers before
        erasing, the surviving map is exactly the last committed state:
        no torn page is ever exposed, no committed write is lost.
        """
        ftl = cls(flash=flash, spare_blocks=spare_blocks, flight=flight)
        per_block = flash.profile.pages_per_block
        programmed = flash.programmed_pages()
        best: dict[int, tuple[int, int]] = {}  # lpage -> (seq, phys)
        touched_blocks: set[int] = set()
        torn = 0
        max_seq = -1
        max_lpage = -1
        for phys in programmed:
            touched_blocks.add(phys // per_block)
            entry = flash.oob(phys)
            if entry is None or not flash.page_crc_ok(phys):
                ftl._stale.add(phys)
                torn += 1
                continue
            lpage, seq, _crc = entry
            max_seq = max(max_seq, seq)
            max_lpage = max(max_lpage, lpage)
            prev = best.get(lpage)
            if prev is None or seq > prev[0]:
                if prev is not None:
                    ftl._stale.add(prev[1])
                best[lpage] = (seq, phys)
            else:
                ftl._stale.add(phys)
        flash.charge_partial_reads(len(programmed))
        for lpage, (_seq, phys) in best.items():
            ftl._map[lpage] = phys
            ftl._reverse[phys] = lpage
        ftl._next_logical = max_lpage + 1
        ftl._next_seq = max_seq + 1
        ftl._free_blocks = deque(
            block
            for block in range(flash.profile.num_blocks)
            if block not in touched_blocks and not flash.is_bad(block)
        )
        ftl._open_block = None
        ftl._next_in_open = 0
        if flash.metrics is not None:
            flash.metrics.counter("ghostdb_recovery_scans_total").inc()
            flash.metrics.counter(
                "ghostdb_recovery_pages_scanned_total"
            ).inc(len(programmed))
            flash.metrics.counter(
                "ghostdb_recovery_torn_pages_total"
            ).inc(torn)
        if flight is not None:
            flight.record(
                "ftl_recovery",
                scanned=len(programmed),
                torn=torn,
                mapped_pages=len(best),
            )
        return ftl

    @property
    def mapped_pages(self) -> int:
        return len(self._map)

    @property
    def free_pages_estimate(self) -> int:
        per_block = self.flash.profile.pages_per_block
        in_open = 0
        if self._open_block is not None:
            in_open = per_block - self._next_in_open
        return len(self._free_blocks) * per_block + in_open + len(self._stale)
