"""A hard-budget RAM allocator for the secure chip.

"Security factors imply that the RAM must be small" (paper, Section 3): the
demo device has tens of KB.  Every device-side query operator must acquire
its working memory from a :class:`RamBudget`; an allocation that would
exceed the budget raises :class:`RamExhaustedError`.  This is what makes
the paper's design pressure *real* in the simulation -- e.g. the hash-join
baseline genuinely cannot build its table in RAM and must spill to flash.

Allocations are labelled so RAM-exhaustion errors and high-water-mark
reports say *which operator* was responsible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.obs.registry import MetricsRegistry


class RamExhaustedError(MemoryError):
    """An allocation would exceed the secure chip's RAM budget."""

    def __init__(self, requested: int, available: int, label: str):
        self.requested = requested
        self.available = available
        self.label = label
        super().__init__(
            f"RAM exhausted: {label!r} requested {requested} B "
            f"but only {available} B of budget remain"
        )


@dataclass
class Allocation:
    """A live reservation of device RAM.

    Use as a context manager (``with budget.allocate(...) as a:``) or call
    :meth:`release` explicitly.  :meth:`resize` supports operators whose
    working-set size evolves (e.g. a growing merge buffer).
    """

    budget: "RamBudget"
    size: int
    label: str
    released: bool = False
    #: Reclaimable memory (e.g. clean cache pages) can be shed on demand
    #: and is excluded from the high-water mark -- it is opportunistic
    #: use of otherwise-idle RAM, not part of a query's working set.
    reclaimable: bool = False

    def resize(self, new_size: int) -> None:
        """Grow or shrink this allocation in place."""
        if self.released:
            raise ValueError(f"allocation {self.label!r} already released")
        if new_size < 0:
            raise ValueError("allocation size cannot be negative")
        delta = new_size - self.size
        if delta > 0:
            self.budget._reserve(delta, self.label, self.reclaimable)
        else:
            self.budget._unreserve(-delta, self.reclaimable)
        self.budget.by_label[self.label] = (
            self.budget.by_label.get(self.label, 0) + delta
        )
        self.size = new_size

    def release(self) -> None:
        if not self.released:
            self.budget._unreserve(self.size, self.reclaimable)
            self.budget.by_label[self.label] = (
                self.budget.by_label.get(self.label, 0) - self.size
            )
            self.released = True

    def __enter__(self) -> "Allocation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


@dataclass
class RamBudget:
    """Tracks RAM reservations against a fixed byte budget."""

    capacity: int
    used: int = 0
    high_water: int = 0
    #: Bytes of :attr:`used` held by reclaimable allocations.  They are
    #: excluded from the high-water mark (opportunistic cache use must
    #: not change a query's reported working set) and can be shed via
    #: :attr:`pressure_hook` when a firm reservation needs the room.
    reclaimable_used: int = 0
    #: Count of allocations ever made, for diagnostics.
    allocation_count: int = 0
    #: label -> currently reserved bytes, for per-operator reporting.
    by_label: dict[str, int] = field(default_factory=dict)
    #: Optional device-lifetime metrics sink.
    metrics: MetricsRegistry | None = None
    #: Called with the byte shortfall when a firm reservation would
    #: overflow; sheds reclaimable memory (returns bytes freed) so the
    #: reservation can be retried before raising.
    pressure_hook: Callable[[int], int] | None = None
    #: Optional session :class:`~repro.obs.flight.FlightRecorder`;
    #: journals pressure episodes and exhaustion.  Host-side diagnostic
    #: state -- recording never changes what the budget grants.
    flight: object | None = None

    @property
    def available(self) -> int:
        return self.capacity - self.used

    @property
    def soft_available(self) -> int:
        """Bytes obtainable counting reclaimable memory as free.

        Sizing decisions (operator fan-in, sort buffers) use this so
        that plans and buffer shapes do not depend on how much of the
        budget the page cache happens to occupy right now.
        """
        return self.capacity - self.used + self.reclaimable_used

    def allocate(
        self, size: int, label: str, reclaimable: bool = False
    ) -> Allocation:
        """Reserve ``size`` bytes, or raise :class:`RamExhaustedError`."""
        if size < 0:
            raise ValueError("allocation size cannot be negative")
        self._reserve(size, label, reclaimable)
        self.allocation_count += 1
        alloc = Allocation(
            budget=self, size=size, label=label, reclaimable=reclaimable
        )
        self.by_label[label] = self.by_label.get(label, 0) + size
        return alloc

    def _reserve(self, size: int, label: str, reclaimable: bool = False) -> None:
        if self.used + size > self.capacity:
            if not reclaimable and self.pressure_hook is not None:
                shortfall = self.used + size - self.capacity
                if self.flight is not None:
                    self.flight.record(
                        "ram_pressure", label=label, shortfall=shortfall
                    )
                self.pressure_hook(shortfall)
            if self.used + size > self.capacity:
                if self.flight is not None:
                    self.flight.record(
                        "ram_exhausted",
                        label=label,
                        requested=size,
                        available=self.available,
                    )
                raise RamExhaustedError(size, self.available, label)
        self.used += size
        if reclaimable:
            self.reclaimable_used += size
        self.high_water = max(self.high_water, self.used - self.reclaimable_used)
        if self.metrics is not None:
            self.metrics.gauge("ghostdb_device_ram_used_bytes").set(self.used)
            self.metrics.gauge(
                "ghostdb_device_ram_high_water_bytes"
            ).set_max(self.high_water)

    def _unreserve(self, size: int, reclaimable: bool = False) -> None:
        if size > self.used:
            raise ValueError(
                f"releasing {size} B but only {self.used} B are reserved"
            )
        self.used -= size
        if reclaimable:
            self.reclaimable_used -= size
        if self.metrics is not None:
            self.metrics.gauge("ghostdb_device_ram_used_bytes").set(self.used)

    def reset_high_water(self) -> None:
        """Restart high-water tracking (e.g. between benchmarked queries)."""
        self.high_water = self.used - self.reclaimable_used
        self.by_label = {
            label: size for label, size in self.by_label.items() if size > 0
        }
