"""The assembled smart USB device (Figure 2 of the paper).

A :class:`SmartUsbDevice` wires together one clock, the RAM budget, the
NAND flash behind its FTL, the secure chip's CPU model, and the USB channel
to the untrusted host.  Everything the hidden side of GhostDB does --
storage, indexing, query execution -- happens through this object, so its
counters and clock are the single source of truth for all benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.chip import SecureChip
from repro.hardware.clock import SimClock, TimeBreakdown
from repro.hardware.flash import FlashStats, NandFlash
from repro.hardware.ftl import FlashTranslationLayer
from repro.hardware.pagecache import CacheStats, PageCache
from repro.hardware.profiles import DEMO_DEVICE, HardwareProfile
from repro.hardware.ram import RamBudget
from repro.hardware.usb import UsbChannel


def default_cache_pages(profile: HardwareProfile) -> int:
    """Default buffer-pool bound: a quarter of RAM, in pages.

    Generous enough that intra-query re-reads (SKT pages, posting
    extents) hit, small enough that firm operator reservations rarely
    need to shed it -- and shedding is cheap anyway (clean pages only).
    """
    return profile.ram_bytes // (4 * profile.page_size)


@dataclass
class DeviceCounters:
    """A consistent snapshot of all device counters at one instant."""

    time: TimeBreakdown
    flash: FlashStats
    ram_high_water: int
    usb_messages: int
    usb_bytes_to_device: int
    usb_bytes_to_host: int
    cache: CacheStats


class SmartUsbDevice:
    """A simulated tamper-resistant smart USB device."""

    def __init__(
        self,
        profile: HardwareProfile = DEMO_DEVICE,
        metrics=None,
        cache_pages: int | None = None,
        flight=None,
    ):
        self.profile = profile
        self.metrics = metrics
        #: The session's :class:`~repro.obs.flight.FlightRecorder` (or
        #: None).  Host-side diagnostic state, like the USB capture log:
        #: journaling never touches the clock, the budget or the wire.
        self.flight = flight
        self.clock = SimClock()
        self.ram = RamBudget(
            capacity=profile.ram_bytes, metrics=metrics, flight=flight
        )
        self.flash = NandFlash(
            profile=profile, clock=self.clock, metrics=metrics
        )
        if cache_pages is None:
            cache_pages = default_cache_pages(profile)
        self.page_cache = PageCache(
            budget=self.ram,
            page_size=profile.page_size,
            capacity_pages=cache_pages,
            metrics=metrics,
        )
        self.page_cache.flight = flight
        self.ftl = FlashTranslationLayer(
            flash=self.flash, cache=self.page_cache, flight=flight
        )
        self.chip = SecureChip(
            profile=profile, clock=self.clock, metrics=metrics
        )
        self.usb = UsbChannel(
            profile=profile, clock=self.clock, metrics=metrics
        )
        self.faults = None

    def attach_faults(self, injector) -> None:
        """Wire a :class:`~repro.faults.FaultInjector` into every
        hardware layer (USB link and NAND flash)."""
        if injector is not None and injector.metrics is None:
            injector.metrics = self.metrics
        if injector is not None and injector.flight is None:
            injector.flight = self.flight
        self.faults = injector
        self.usb.faults = injector
        self.flash.faults = injector

    def detach_faults(self) -> None:
        self.attach_faults(None)

    def remount(self) -> None:
        """Recover after a power cut or unplug.

        Volatile state (RAM contents, the in-memory FTL map) is gone;
        the flash array survives.  A fresh RAM budget is allocated and
        the FTL map is rebuilt from the spare-area journal
        (:meth:`~repro.hardware.ftl.FlashTranslationLayer.recover`),
        which rolls back torn writes to the last committed state.
        """
        self.ram = RamBudget(
            capacity=self.profile.ram_bytes,
            metrics=self.metrics,
            flight=self.flight,
        )
        self.ftl = FlashTranslationLayer.recover(
            self.flash,
            spare_blocks=self.ftl.spare_blocks,
            flight=self.flight,
        )
        # Cached pages were volatile RAM: gone with the power.  Re-home
        # the pool on the fresh budget and hand it to the new FTL.
        self.page_cache.rewire(self.ram)
        self.ftl.cache = self.page_cache
        if self.metrics is not None:
            self.metrics.counter("ghostdb_recovery_remounts_total").inc()
        if self.flight is not None:
            self.flight.record(
                "remount", mapped_pages=self.ftl.mapped_pages
            )

    def counters(self) -> DeviceCounters:
        """Snapshot every counter (cheap; used to diff around a query)."""
        return DeviceCounters(
            time=self.clock.breakdown(),
            flash=self.flash.stats.snapshot(),
            ram_high_water=self.ram.high_water,
            usb_messages=self.usb.message_count,
            usb_bytes_to_device=self.usb.bytes_to_device,
            usb_bytes_to_host=self.usb.bytes_to_host,
            cache=self.page_cache.stats.snapshot(),
        )

    def reset_measurements(self) -> None:
        """Zero the clock, traffic log and high-water mark.

        Storage contents and FTL state are preserved: this separates the
        (expensive, simulated) database load from the measured query, like
        unplugging and re-plugging the key.
        """
        self.clock.reset()
        self.usb.clear_log()
        self.ram.reset_high_water()
        self.flash.stats = FlashStats()
        self.chip.stats.cycles_by_op.clear()
        # A measurement starts cold: cached pages from earlier activity
        # would otherwise bleed one scenario's reuse into the next.
        self.page_cache.clear()
        self.page_cache.stats = CacheStats()

    def __repr__(self) -> str:
        return (
            f"SmartUsbDevice(profile={self.profile.name!r}, "
            f"ram={self.profile.ram_bytes}B, "
            f"flash={self.profile.flash_bytes // (1024 * 1024)}MiB)"
        )
