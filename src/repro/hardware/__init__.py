"""Smart USB device simulator.

The paper's device (Figure 2) is a secure chip -- 32-bit RISC CPU, tens of
KB of RAM -- attached to a gigabyte-scale external NAND flash and a USB 2.0
full-speed link.  GhostDB's whole design exists because of three hardware
facts, and this package simulates exactly those three:

* RAM is tiny: :class:`~repro.hardware.ram.RamBudget` enforces a hard byte
  budget and raises :class:`~repro.hardware.ram.RamExhaustedError` when a
  query operator tries to exceed it.
* NAND flash is asymmetric: :class:`~repro.hardware.flash.NandFlash` charges
  reads, writes (3-10x slower) and block erases separately, and forbids
  in-place writes; :class:`~repro.hardware.ftl.FlashTranslationLayer` hides
  that behind logical pages, log-structured writes and garbage collection.
* The link is slow and observable: :class:`~repro.hardware.usb.UsbChannel`
  charges 12 Mb/s transfer time and records every byte that crosses the
  trust boundary so a "spy" (and the leak checker) can inspect it.

All components charge their simulated time into one
:class:`~repro.hardware.clock.SimClock`, so an execution produces a single
coherent simulated duration with a per-category breakdown.
"""

from repro.hardware.clock import SimClock, TimeBreakdown
from repro.hardware.profiles import (
    DEMO_DEVICE,
    HARSH_FLASH_DEVICE,
    HIGH_SPEED_DEVICE,
    TINY_DEVICE,
    HardwareProfile,
)
from repro.hardware.ram import Allocation, RamBudget, RamExhaustedError
from repro.hardware.flash import (
    FlashError,
    NandFlash,
    PageProgrammedError,
    WearOutError,
)
from repro.hardware.ftl import (
    DeviceReadOnlyError,
    FlashFullError,
    FlashTranslationLayer,
)
from repro.hardware.usb import Direction, TrafficRecord, UsbChannel, UsbError
from repro.hardware.chip import SecureChip
from repro.hardware.device import SmartUsbDevice

__all__ = [
    "Allocation",
    "DEMO_DEVICE",
    "DeviceReadOnlyError",
    "Direction",
    "FlashError",
    "FlashFullError",
    "FlashTranslationLayer",
    "HARSH_FLASH_DEVICE",
    "HIGH_SPEED_DEVICE",
    "HardwareProfile",
    "NandFlash",
    "PageProgrammedError",
    "RamBudget",
    "RamExhaustedError",
    "SecureChip",
    "SimClock",
    "SmartUsbDevice",
    "TINY_DEVICE",
    "TimeBreakdown",
    "TrafficRecord",
    "UsbChannel",
    "UsbError",
    "WearOutError",
]
