"""The USB link between the untrusted terminal and the smart USB device.

This is the trust boundary of GhostDB.  Everything that crosses it is, by
assumption, visible to a spy (a Trojan horse on the terminal, a sniffer on
the bus).  The channel therefore does two jobs:

* **timing** -- USB 2.0 full speed moves 12 Mb/s, plus a fixed per-message
  cost, charged to the shared :class:`~repro.hardware.clock.SimClock`; and
* **observability** -- every message is recorded as a
  :class:`TrafficRecord` with its raw payload, so
  :mod:`repro.privacy` can show the demo's "what a pirate would observe"
  view and mechanically verify that no hidden data ever crossed.

The channel itself enforces no policy; policy lives in
:mod:`repro.visible.link`, which simply has no verbs for exporting hidden
data ("data flows in only one direction: from public to private").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.faults.errors import DeviceUnpluggedError, GhostDBFaultError
from repro.faults.injector import FaultInjector
from repro.hardware.clock import SimClock
from repro.hardware.profiles import HardwareProfile
from repro.obs.registry import MetricsRegistry


class UsbError(Exception):
    """Malformed use of the USB channel."""


class UsbDroppedError(GhostDBFaultError):
    """A message was lost on the bus (receiver timed out waiting).

    Transient: the link layer retries the transfer."""


class Direction(enum.Enum):
    """Which way a message crossed the trust boundary."""

    TO_DEVICE = "host->device"
    TO_HOST = "device->host"


@dataclass(frozen=True)
class TrafficRecord:
    """One observed message on the bus: what the spy gets to see."""

    seq: int
    direction: Direction
    kind: str
    payload: bytes
    #: Simulated time at which the transfer completed.
    completed_at: float
    description: str = ""
    #: Fault kinds the injector applied to this message ("corrupt",
    #: "truncate", "drop", "stall", "unplug").  Empty for clean
    #: transfers.  The spy still sees faulted bytes; the leak checker
    #: uses the tags to skip structural parsing of mangled frames.
    faults: tuple[str, ...] = ()

    @property
    def size(self) -> int:
        return len(self.payload)


@dataclass
class UsbChannel:
    """A half-duplex message channel with timing and full capture."""

    profile: HardwareProfile
    clock: SimClock
    log: list[TrafficRecord] = field(default_factory=list)
    bytes_to_device: int = 0
    bytes_to_host: int = 0
    #: Optional deterministic fault injector (see :mod:`repro.faults`).
    faults: FaultInjector | None = None
    #: Optional device-lifetime metrics sink (monotonic; includes load).
    metrics: MetricsRegistry | None = None
    #: Optional second log that every record is appended to as well.
    #: Session multiplexing swaps ``log`` to the active session's
    #: private capture and mirrors into the device-lifetime log, which
    #: is what a bus spy sees: the full interleaved traffic stream.
    mirror: list[TrafficRecord] | None = None

    def transfer(
        self,
        direction: Direction,
        kind: str,
        payload: bytes,
        description: str = "",
    ) -> bytes:
        """Move ``payload`` across the bus; returns the delivered bytes.

        The delivered bytes normally equal the payload; with fault
        injection enabled they may be corrupted, which upper layers must
        detect via their own checksums.
        """
        if not isinstance(payload, (bytes, bytearray)):
            raise UsbError(
                f"USB payloads must be bytes, got {type(payload).__name__}"
            )
        payload = bytes(payload)
        seconds = self.profile.usb_setup_s + (
            len(payload) * 8 / self.profile.usb_bits_per_s
        )
        self.clock.advance(seconds, "usb")
        if direction is Direction.TO_DEVICE:
            self.bytes_to_device += len(payload)
        else:
            self.bytes_to_host += len(payload)
        if self.metrics is not None:
            label = (
                "to_device" if direction is Direction.TO_DEVICE else "to_host"
            )
            self.metrics.counter("ghostdb_device_usb_messages_total").inc(
                direction=label
            )
            self.metrics.counter("ghostdb_device_usb_bytes_total").inc(
                len(payload), direction=label
            )
            self.metrics.histogram(
                "ghostdb_device_usb_message_bytes"
            ).observe(len(payload), direction=label)
        delivered = payload
        fault_tags: tuple[str, ...] = ()
        decision = None
        if self.faults is not None:
            decision = self.faults.usb_decision(len(payload))
        if decision is not None:
            fault_tags = (decision.kind,)
            if decision.kind == "corrupt" and payload:
                corrupted = bytearray(payload)
                corrupted[decision.position] ^= decision.xor_mask
                delivered = bytes(corrupted)
            elif decision.kind == "truncate" and payload:
                delivered = payload[: decision.length]
            elif decision.kind == "stall":
                # The bus hiccupped; the message arrives intact but late.
                self.clock.advance(decision.seconds, "usb")
        seq = len(self.log)
        record = TrafficRecord(
            seq=seq,
            direction=direction,
            kind=kind,
            payload=delivered,
            completed_at=self.clock.now,
            description=description,
            faults=fault_tags,
        )
        self.log.append(record)
        if self.mirror is not None:
            self.mirror.append(record)
        if decision is not None:
            if decision.kind == "drop":
                raise UsbDroppedError(
                    f"message #{seq} ({kind}) was lost on the bus"
                )
            if decision.kind == "unplug":
                raise DeviceUnpluggedError(
                    f"device unplugged during message #{seq} ({kind})"
                )
        return delivered

    @property
    def message_count(self) -> int:
        return len(self.log)

    def records(self, direction: Direction | None = None) -> list[TrafficRecord]:
        """All captured traffic, optionally filtered by direction."""
        if direction is None:
            return list(self.log)
        return [r for r in self.log if r.direction is direction]

    def clear_log(self) -> None:
        """Forget captured traffic (between benchmark repetitions)."""
        self.log.clear()
        self.bytes_to_device = 0
        self.bytes_to_host = 0
