"""Device-side buffer pool: an LRU cache of logical flash pages.

The secure chip's RAM is the scarcest resource on the key, but whatever
slice of it a query leaves idle can hold recently read flash pages -- the
climbing-index posting extents and SKT pages that dominate re-scan-heavy
workloads are re-read from simulated NAND on every pass otherwise.  The
cache lives *inside* the :class:`~repro.hardware.ram.RamBudget` as a
reclaimable allocation: it competes with operator reservations, is shed
page-by-page when a firm reservation needs the room, and is excluded
from the high-water mark (opportunistic reuse of idle RAM must not
change a query's reported working set).

Privacy: the cache sits strictly below the FTL's logical-page interface,
on the device side of the USB link.  A hit skips the flash read (no
simulated-time charge, no flash counter, no fault-injection decision)
but never changes what crosses the wire -- observable USB traffic is
bit-identical cache-on vs cache-off, which the leakage meter's gate
verifies.

Policy: pages are admitted and LRU-promoted only on *full-page* reads;
partial reads (single-record probes) may be served from a cached page
for free but never mutate cache state.  This keeps hit/miss behaviour a
function of the *set* of pages fully read, not of the interleaving of
partial probes -- and operator interleaving is the one thing the
host-side batch window is allowed to change, so this is what keeps
hardware counters bit-identical across batch sizes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.hardware.ram import Allocation, RamBudget, RamExhaustedError
from repro.obs.registry import MetricsRegistry

#: RAM-budget label under which the pool's pages are accounted.
CACHE_LABEL = "page-cache"


@dataclass
class CacheStats:
    """Integer counters, cheap enough to sample per batch window."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    shed_pages: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        looked = self.lookups
        return self.hits / looked if looked else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            invalidations=self.invalidations,
            shed_pages=self.shed_pages,
        )


class PageCache:
    """LRU pool of full logical pages, allocated from the RAM budget.

    ``capacity_pages`` bounds the pool: ``0`` disables caching entirely,
    ``None`` means unbounded (the RAM budget is then the only limit).
    Either way the pool never holds RAM the budget did not grant.
    """

    def __init__(
        self,
        budget: RamBudget,
        page_size: int,
        capacity_pages: int | None,
        metrics: MetricsRegistry | None = None,
    ):
        if capacity_pages is not None and capacity_pages < 0:
            raise ValueError("cache capacity cannot be negative")
        self.page_size = page_size
        self.capacity_pages = capacity_pages
        self.metrics = metrics
        #: Optional session flight recorder; journals shed and
        #: invalidation episodes for postmortems (set by the device).
        self.flight = None
        self.stats = CacheStats()
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        self._alloc: Allocation | None = None
        # Bound counter children -- one registry resolution per name
        # instead of one per lookup (the pool is probed per flash read).
        self._bound: dict = {}
        self._attach(budget)

    # ------------------------------------------------------------------
    # Budget wiring
    # ------------------------------------------------------------------

    def _attach(self, budget: RamBudget) -> None:
        self.budget = budget
        self._alloc = budget.allocate(0, CACHE_LABEL, reclaimable=True)
        budget.pressure_hook = self.shed

    def rewire(self, budget: RamBudget) -> None:
        """Adopt a fresh budget after a remount.

        The old budget object (and the allocation registered with it) is
        discarded wholesale by the remount, so only this side needs
        resetting; cached contents are volatile RAM and are gone.
        """
        self._pages.clear()
        self._attach(budget)
        self._gauge()

    # ------------------------------------------------------------------
    # Lookup / admission
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.capacity_pages != 0

    @property
    def capacity_for_costing(self) -> int:
        """Capacity as a plain int for the cost model: ``0`` when the
        pool is off, a budget-sized bound when it is unbounded."""
        if self.capacity_pages is None:
            return max(1, self.budget.capacity // self.page_size)
        return self.capacity_pages

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def lookup(self, lpage: int, promote: bool) -> bytes | None:
        """The cached content of ``lpage``, or None on a miss.

        ``promote`` marks full-page reads: only those refresh LRU order
        (and only those admit on a miss, via :meth:`admit`).  Partial
        probes are served for free but leave the LRU order untouched, so
        cache state depends only on which pages were fully read.
        """
        if not self.enabled:
            return None
        data = self._pages.get(lpage)
        if data is None:
            self.stats.misses += 1
            self._count("ghostdb_cache_misses_total")
            return None
        if promote:
            self._pages.move_to_end(lpage)
        self.stats.hits += 1
        self._count("ghostdb_cache_hits_total")
        return data

    def admit(self, lpage: int, data: bytes) -> None:
        """Insert a fully read page, evicting LRU pages as needed.

        Admission is best-effort: if the RAM budget cannot grant another
        page even after evicting everything else, the page simply is not
        cached (correctness never depends on a hit).
        """
        if not self.enabled or lpage in self._pages:
            return
        if (
            self.capacity_pages is not None
            and len(self._pages) >= self.capacity_pages
        ):
            self._evict_lru(count=len(self._pages) - self.capacity_pages + 1)
        while True:
            try:
                self._alloc.resize(self._alloc.size + self.page_size)
                break
            except RamExhaustedError:
                if not self._pages:
                    return
                self._evict_lru(count=1)
        self._pages[lpage] = data
        self._gauge()

    # ------------------------------------------------------------------
    # Invalidation / shedding
    # ------------------------------------------------------------------

    def invalidate(self, lpage: int) -> None:
        """Drop ``lpage`` (its logical content changed or was freed)."""
        if self._pages.pop(lpage, None) is not None:
            self.stats.invalidations += 1
            self._count("ghostdb_cache_invalidations_total")
            if self.flight is not None:
                self.flight.record("cache_invalidate", pages=1)
            self._alloc.resize(self._alloc.size - self.page_size)
            self._gauge()

    def clear(self) -> None:
        """Drop every cached page (remount, measurement reset)."""
        dropped = len(self._pages)
        self._pages.clear()
        if dropped:
            self.stats.invalidations += dropped
            self._count("ghostdb_cache_invalidations_total", dropped)
            if self.flight is not None:
                self.flight.record("cache_invalidate", pages=dropped)
        if self._alloc is not None and not self._alloc.released:
            self._alloc.resize(0)
        self._gauge()

    def shed(self, nbytes: int) -> int:
        """Free at least ``nbytes`` by evicting LRU pages, if possible.

        Registered as the budget's pressure hook: a firm reservation
        that would overflow the budget sheds cache pages first and only
        raises :class:`RamExhaustedError` if the cache cannot cover it.
        """
        freed = 0
        while freed < nbytes and self._pages:
            self._pages.popitem(last=False)
            self._alloc.resize(self._alloc.size - self.page_size)
            freed += self.page_size
            self.stats.shed_pages += 1
            self._count("ghostdb_cache_shed_pages_total")
        if freed:
            if self.flight is not None:
                self.flight.record(
                    "cache_shed",
                    pages=freed // self.page_size,
                    bytes=freed,
                )
            self._gauge()
        return freed

    def resize(self, capacity_pages: int | None) -> None:
        """Change the page bound; ``0`` disables and drops everything."""
        if capacity_pages is not None and capacity_pages < 0:
            raise ValueError("cache capacity cannot be negative")
        self.capacity_pages = capacity_pages
        if capacity_pages == 0:
            self.clear()
        elif (
            capacity_pages is not None and len(self._pages) > capacity_pages
        ):
            self._evict_lru(count=len(self._pages) - capacity_pages)
            self._gauge()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _evict_lru(self, count: int) -> None:
        for _ in range(count):
            if not self._pages:
                return
            self._pages.popitem(last=False)
            self._alloc.resize(self._alloc.size - self.page_size)
            self.stats.evictions += 1
            self._count("ghostdb_cache_evictions_total")

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is None:
            return
        bound = self._bound.get(name)
        if bound is None:
            bound = self.metrics.counter(name).labelled()
            self._bound[name] = bound
        bound.inc(amount)

    def _gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("ghostdb_cache_pages").set(len(self._pages))

    def __repr__(self) -> str:
        cap = (
            "unbounded"
            if self.capacity_pages is None
            else f"{self.capacity_pages}p"
        )
        return (
            f"PageCache({len(self._pages)} pages, cap={cap}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
