"""Physical NAND flash model: pages, blocks, asymmetric timing, no
in-place writes.

The paper (Section 3): "The Flash memory itself exhibits asymmetric costs
for reads and writes.  Writes are between 3 to 10 times slower than reads
depending on the portion of the page to be read (full page vs. single word)
and writes in place are precluded."

This module models exactly that physical layer:

* the flash is an array of erase blocks, each holding ``pages_per_block``
  pages of ``page_size`` bytes;
* a page can be *programmed* (written) only once after its block was
  erased; re-programming raises :class:`PageProgrammedError`;
* a read of a small slice of a page is charged the cheaper partial-read
  time, a full-page read the full time;
* erases happen at block granularity, are the slowest operation, and count
  toward optional wear-out.

The :class:`~repro.hardware.ftl.FlashTranslationLayer` built on top turns
this into an ordinary "write any logical page" interface.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.faults.errors import PowerCutError
from repro.faults.injector import FaultInjector
from repro.hardware.clock import SimClock
from repro.hardware.profiles import HardwareProfile
from repro.obs.registry import MetricsRegistry


class FlashError(Exception):
    """Base class for physical flash errors."""


class PageProgrammedError(FlashError):
    """Attempted to program a page that is already programmed.

    NAND flash precludes writes in place; the FTL must relocate instead.
    """


class ProgramFailedError(FlashError):
    """A page program was torn: the page now holds garbage with an
    invalid spare-area checksum.  The device is still powered; the FTL
    must mark the page unusable and relocate the write."""


class BadBlockError(FlashError):
    """A block failed a program or erase and is now marked bad.

    Real NAND ships with (and grows) bad blocks; they can still be read
    but must be retired from the write rotation."""


class WearOutError(BadBlockError):
    """A block exceeded its program/erase cycle endurance.

    Worn-out blocks are *grown bad blocks*: the erase that trips the
    endurance limit marks the block bad, so it leaves the write rotation
    through the same retirement path as any other bad block.  Callers
    that only care about retirement catch :class:`BadBlockError`; the
    subclass keeps the root cause typed for diagnostics."""


#: XOR mask applied to the stored spare-area CRC of a torn page, so a
#: torn program is detectable but deterministic.
_TORN_CRC_MASK = 0x5A5A5A5A


@dataclass
class FlashStats:
    """Operation counters, for benchmarks and cost-model validation."""

    page_reads_full: int = 0
    page_reads_partial: int = 0
    page_writes: int = 0
    block_erases: int = 0

    @property
    def page_reads(self) -> int:
        return self.page_reads_full + self.page_reads_partial

    def snapshot(self) -> "FlashStats":
        return FlashStats(
            page_reads_full=self.page_reads_full,
            page_reads_partial=self.page_reads_partial,
            page_writes=self.page_writes,
            block_erases=self.block_erases,
        )


#: A partial read is charged the cheap rate when it touches at most this
#: fraction of a page.  Reads larger than that cost a full-page read.
PARTIAL_READ_FRACTION = 0.25


@dataclass
class NandFlash:
    """A raw NAND flash array with simulated timing.

    Page contents are stored sparsely (dict keyed by physical page number)
    so simulating a 1 GiB device does not allocate 1 GiB of host memory.
    """

    profile: HardwareProfile
    clock: SimClock
    stats: FlashStats = field(default_factory=FlashStats)
    #: Optional device-lifetime metrics sink (monotonic; includes load,
    #: unlike the query-attributed ``ghostdb_flash_*`` family).
    metrics: MetricsRegistry | None = None
    #: Optional deterministic fault injector (see :mod:`repro.faults`).
    faults: FaultInjector | None = None
    _pages: dict[int, bytes] = field(default_factory=dict)
    #: Spare-area ("out of band") metadata per programmed page:
    #: ``(logical_page, write_seq, crc32)``.  This is the journal the
    #: mount-time recovery scan rebuilds the FTL map from.
    _oob: dict[int, tuple[int, int, int]] = field(default_factory=dict)
    _bad_blocks: set[int] = field(default_factory=set)
    _erase_counts: dict[int, int] = field(default_factory=dict)
    #: Bound counter children, keyed by (name, label items) -- one
    #: registry resolution per site instead of one per simulated op.
    _bound: dict = field(default_factory=dict, repr=False)

    def _count(self, name: str, amount: int = 1, **labels) -> None:
        if self.metrics is None:
            return
        key = (name, *labels.items())
        bound = self._bound.get(key)
        if bound is None:
            bound = self.metrics.counter(name).labelled(**labels)
            self._bound[key] = bound
        bound.inc(amount)

    @property
    def num_pages(self) -> int:
        return self.profile.num_blocks * self.profile.pages_per_block

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.num_pages:
            raise FlashError(f"physical page {page} out of range")

    def block_of(self, page: int) -> int:
        return page // self.profile.pages_per_block

    def is_programmed(self, page: int) -> bool:
        self._check_page(page)
        return page in self._pages

    def read(self, page: int, offset: int = 0, length: int | None = None) -> bytes:
        """Read ``length`` bytes of ``page`` starting at ``offset``.

        Reading a small slice is charged the partial-read time (the paper's
        "single word" case); anything larger costs a full-page read.
        Reading an erased page returns 0xFF filler, as real NAND does.
        """
        self._check_page(page)
        page_size = self.profile.page_size
        if length is None:
            length = page_size - offset
        if offset < 0 or length < 0 or offset + length > page_size:
            raise FlashError(
                f"read of [{offset}, {offset + length}) exceeds page size"
            )
        partial = length <= page_size * PARTIAL_READ_FRACTION
        if partial:
            self.stats.page_reads_partial += 1
            self.clock.advance(self.profile.flash_read_partial_s, "flash_read")
            self._count("ghostdb_device_flash_reads_total", kind="partial")
        else:
            self.stats.page_reads_full += 1
            self.clock.advance(self.profile.flash_read_full_s, "flash_read")
            self._count("ghostdb_device_flash_reads_total", kind="full")
        if self.faults is not None:
            decision = self.faults.flash_decision("read", length)
            if decision is not None:
                if decision.kind == "power_cut":
                    raise PowerCutError(
                        f"power lost during read of page {page}"
                    )
                if decision.kind == "bitflip":
                    # Transient bit flip caught by the spare-area ECC:
                    # the controller re-reads the page (charged at the
                    # same rate class) and delivers corrected data.
                    if partial:
                        self.stats.page_reads_partial += 1
                        self.clock.advance(
                            self.profile.flash_read_partial_s, "flash_read"
                        )
                        self._count(
                            "ghostdb_device_flash_reads_total", kind="partial"
                        )
                    else:
                        self.stats.page_reads_full += 1
                        self.clock.advance(
                            self.profile.flash_read_full_s, "flash_read"
                        )
                        self._count(
                            "ghostdb_device_flash_reads_total", kind="full"
                        )
                    self._count("ghostdb_flash_ecc_corrections_total")
        data = self._pages.get(page, b"\xff" * page_size)
        return data[offset : offset + length]

    def program(
        self,
        page: int,
        data: bytes,
        oob: tuple[int, int] | None = None,
    ) -> None:
        """Program (write) a whole page.  The page must be erased.

        ``oob`` is the spare-area journal entry ``(logical_page,
        write_seq)`` stamped by the FTL; together with a CRC32 of the
        page content it is what the mount-time recovery scan trusts.
        Pages programmed without ``oob`` are invisible to recovery.
        """
        self._check_page(page)
        if len(data) > self.profile.page_size:
            raise FlashError(
                f"page data of {len(data)} B exceeds page size "
                f"{self.profile.page_size}"
            )
        block = self.block_of(page)
        if block in self._bad_blocks:
            raise BadBlockError(f"block {block} is marked bad")
        if page in self._pages:
            raise PageProgrammedError(
                f"page {page} is already programmed; erase block "
                f"{self.block_of(page)} first (no in-place writes)"
            )
        padded = data + b"\xff" * (self.profile.page_size - len(data))
        self.stats.page_writes += 1
        self.clock.advance(self.profile.flash_write_s, "flash_write")
        self._count("ghostdb_device_flash_writes_total")
        if self.faults is not None:
            decision = self.faults.flash_decision("program")
            if decision is not None:
                if decision.kind == "power_cut":
                    # Power died mid-program: the page holds the data
                    # but its spare-area CRC never committed -- a torn
                    # page the recovery scan must roll back.
                    self._tear_page(page, padded, oob)
                    raise PowerCutError(
                        f"power lost while programming page {page}"
                    )
                if decision.kind == "bad_block":
                    self._bad_blocks.add(block)
                    self._count(
                        "ghostdb_device_flash_bad_blocks_total"
                    )
                    raise BadBlockError(
                        f"block {block} failed to program and is now bad"
                    )
                if decision.kind == "torn":
                    self._tear_page(page, padded, oob)
                    raise ProgramFailedError(
                        f"program of page {page} was torn"
                    )
        self._pages[page] = padded
        if oob is not None:
            lpage, seq = oob
            self._oob[page] = (lpage, seq, zlib.crc32(padded))

    def _tear_page(self, page: int, padded: bytes, oob) -> None:
        """Leave ``page`` in the state a torn program produces: content
        present, spare-area CRC invalid (deterministically)."""
        self._pages[page] = padded
        if oob is not None:
            lpage, seq = oob
            self._oob[page] = (
                lpage, seq, zlib.crc32(padded) ^ _TORN_CRC_MASK
            )

    def erase_block(self, block: int) -> None:
        """Erase every page of ``block``; counts toward wear."""
        if not 0 <= block < self.profile.num_blocks:
            raise FlashError(f"block {block} out of range")
        if block in self._bad_blocks:
            raise BadBlockError(f"block {block} is marked bad")
        count = self._erase_counts.get(block, 0) + 1
        limit = self.profile.max_erase_cycles
        if limit is not None and count > limit:
            # Endurance exceeded: the block is now a *grown* bad block.
            # It stays readable (live data was relocated before the
            # erase attempt) but never re-enters the write rotation.
            self._bad_blocks.add(block)
            self._count("ghostdb_device_flash_bad_blocks_total")
            raise WearOutError(
                f"block {block} exceeded its {limit} erase-cycle endurance"
            )
        per_block = self.profile.pages_per_block
        first = block * per_block
        self.stats.block_erases += 1
        self.clock.advance(self.profile.flash_erase_s, "flash_erase")
        self._count("ghostdb_device_flash_erases_total")
        if self.faults is not None:
            decision = self.faults.flash_decision("erase", per_block)
            if decision is not None:
                if decision.kind == "power_cut":
                    # Mid-erase cut: a prefix of the block's pages was
                    # physically wiped before power died.  Surviving
                    # pages are stale copies (GC relocates live pages
                    # before erasing), so recovery discards them by seq.
                    self._erase_counts[block] = count
                    for page in range(first, first + decision.length):
                        self._pages.pop(page, None)
                        self._oob.pop(page, None)
                    raise PowerCutError(
                        f"power lost while erasing block {block}"
                    )
                if decision.kind == "bad_block":
                    self._bad_blocks.add(block)
                    self._count("ghostdb_device_flash_bad_blocks_total")
                    raise BadBlockError(
                        f"block {block} failed to erase and is now bad"
                    )
        self._erase_counts[block] = count
        for page in range(first, first + per_block):
            self._pages.pop(page, None)
            self._oob.pop(page, None)

    def charge_partial_reads(self, count: int) -> None:
        """Charge ``count`` modeled partial reads without moving data.

        Used for metadata structures whose content the simulator keeps in
        host memory but whose I/O cost must still be paid -- e.g. the
        climbing-index directory (a B-tree on a real device).
        """
        if count < 0:
            raise FlashError("negative read count")
        self.stats.page_reads_partial += count
        self.clock.advance(count * self.profile.flash_read_partial_s, "flash_read")
        self._count("ghostdb_device_flash_reads_total", count, kind="partial")

    # ------------------------------------------------------------------
    # Spare-area journal and bad-block marks (recovery interface)
    # ------------------------------------------------------------------

    def programmed_pages(self) -> list[int]:
        """All physically programmed page numbers, ascending."""
        return sorted(self._pages)

    def oob(self, page: int) -> tuple[int, int, int] | None:
        """Spare-area entry ``(lpage, seq, crc)`` of ``page``, if any."""
        return self._oob.get(page)

    def page_crc_ok(self, page: int) -> bool:
        """Does the stored CRC match the page content?  A torn program
        leaves this False, which is how recovery detects it."""
        entry = self._oob.get(page)
        if entry is None or page not in self._pages:
            return False
        return entry[2] == zlib.crc32(self._pages[page])

    def mark_bad(self, block: int) -> None:
        self._bad_blocks.add(block)

    def is_bad(self, block: int) -> bool:
        return block in self._bad_blocks

    @property
    def bad_blocks(self) -> frozenset[int]:
        return frozenset(self._bad_blocks)

    @property
    def bad_block_count(self) -> int:
        """Cheap count of bad blocks (no set copy; hot in the FTL)."""
        return len(self._bad_blocks)

    def erase_count(self, block: int) -> int:
        return self._erase_counts.get(block, 0)

    @property
    def max_wear(self) -> int:
        """Highest erase count over all blocks (wear-levelling metric)."""
        return max(self._erase_counts.values(), default=0)
