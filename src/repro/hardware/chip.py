"""Secure-chip CPU cost model.

The device's 32-bit RISC processor is slow (tens of MHz) compared to the
terminal's CPU, which is one of the reasons GhostDB "delegates as much work
as possible to the PC and the server as long as this processing does not
compromise hidden data" (Section 3).  Operators charge per-tuple CPU work
here so plans that process fewer tuples on-device genuinely run faster.

The per-operation cycle counts are coarse (an interpreted comparison is a
few dozen RISC instructions) but uniform, so *relative* plan costs -- the
thing the paper's Figure 6 game is about -- are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.clock import SimClock
from repro.hardware.profiles import HardwareProfile
from repro.obs.registry import MetricsRegistry

#: Default cycle costs for the primitive per-tuple operations the engine
#: performs.  These feed both execution (charged on the clock) and the
#: optimizer's cost model (estimated), keeping the two consistent.
CYCLES = {
    "compare": 40,  # compare two scalar values
    "hash": 120,  # hash a key (used by Bloom filters and hash join)
    "copy_word": 8,  # move 4 bytes within RAM
    "decode_field": 60,  # decode one field from a flash record
    "merge_step": 50,  # one step of a sorted-list merge
    "bloom_probe": 150,  # k hash probes into a Bloom filter
    "bloom_insert": 150,
}


@dataclass
class CpuStats:
    """Cycle counters per primitive, for per-operator reporting."""

    cycles_by_op: dict[str, int] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return sum(self.cycles_by_op.values())


@dataclass
class SecureChip:
    """Charges CPU time for device-side per-tuple work."""

    profile: HardwareProfile
    clock: SimClock
    stats: CpuStats = field(default_factory=CpuStats)
    #: Optional device-lifetime metrics sink (monotonic; includes load).
    metrics: MetricsRegistry | None = None
    #: Bound cycle-counter children per primitive (hot path).
    _bound: dict = field(default_factory=dict, repr=False)

    def _cycles(self, op: str, cycles: int) -> None:
        bound = self._bound.get(op)
        if bound is None:
            bound = self.metrics.counter(
                "ghostdb_device_cpu_cycles_total"
            ).labelled(op=op)
            self._bound[op] = bound
        bound.inc(cycles)

    def charge(self, op: str, count: int = 1) -> None:
        """Charge ``count`` occurrences of primitive ``op``."""
        if count < 0:
            raise ValueError("operation count cannot be negative")
        try:
            cycles = CYCLES[op] * count
        except KeyError:
            raise ValueError(f"unknown CPU primitive: {op!r}") from None
        self.stats.cycles_by_op[op] = (
            self.stats.cycles_by_op.get(op, 0) + cycles
        )
        if self.metrics is not None:
            self._cycles(op, cycles)
        self.clock.advance(cycles / self.profile.cpu_hz, "cpu")

    def charge_cycles(self, cycles: int) -> None:
        """Charge a raw cycle count (for costs outside the primitive set)."""
        if cycles < 0:
            raise ValueError("cycle count cannot be negative")
        self.stats.cycles_by_op["raw"] = (
            self.stats.cycles_by_op.get("raw", 0) + cycles
        )
        if self.metrics is not None:
            self._cycles("raw", cycles)
        self.clock.advance(cycles / self.profile.cpu_hz, "cpu")
