"""Recursive-descent parser for the GhostDB SQL dialect.

Supported statements::

    CREATE TABLE t (
        col INTEGER PRIMARY KEY,
        col DATE,
        col CHAR(100) HIDDEN,
        col REFERENCES other(pk) HIDDEN,      -- type inherited from pk
        col INTEGER REFERENCES other(pk)
    );

    SELECT a.x, count(*), avg(b.y) FROM ta a, tb b
    WHERE a.x > 5 AND b.name = 'Sclerosis' AND a.id = b.a_id
      AND b.kind IN ('x', 'y') AND a.q BETWEEN 1 AND 5
    GROUP BY a.x HAVING count(*) > 10
    ORDER BY a.x DESC LIMIT 20;

    INSERT INTO t VALUES (1, 'x', 2006-11-05), (2, 'y', 2006-11-06);

    UPDATE t SET col = 5, name = 'x' WHERE id BETWEEN 10 AND 20;

    DELETE FROM t WHERE kind IN ('x', 'y');

WHERE clauses are conjunctions of comparisons, BETWEEN (desugared into
two comparisons) and IN lists -- the SPJ fragment the paper's query
processing section concentrates on, plus the aggregation/ordering
extensions documented in DESIGN.md §6.  UPDATE and DELETE are
single-table with literal assignments; their WHERE grammar is shared
with SELECT.
"""

from __future__ import annotations

import datetime

from repro.sql import ast
from repro.sql.errors import ParseError
from repro.sql.lexer import DATE, EOF, IDENT, NUMBER, STRING, SYMBOL, Token, tokenize

# Hard (reserved) keywords only.  PRIMARY, KEY, HIDDEN, REFERENCES, AS and
# DATE are contextual so that schema columns like Visit.Date still parse.
_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "BETWEEN", "CREATE", "TABLE",
    "INSERT", "INTO", "VALUES", "IN", "GROUP", "BY", "ORDER", "LIMIT",
    "HAVING", "UPDATE", "SET", "DELETE",
}

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token.kind == IDENT and token.upper == word

    def accept_keyword(self, word: str) -> bool:
        if self.at_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise ParseError(
                f"expected {word}, found {self.peek().value!r}",
                self.peek().position,
            )

    def accept_symbol(self, sym: str) -> bool:
        token = self.peek()
        if token.kind == SYMBOL and token.value == sym:
            self.advance()
            return True
        return False

    def expect_symbol(self, sym: str) -> None:
        if not self.accept_symbol(sym):
            raise ParseError(
                f"expected {sym!r}, found {self.peek().value!r}",
                self.peek().position,
            )

    def expect_ident(self, what: str) -> str:
        token = self.peek()
        if token.kind != IDENT:
            raise ParseError(
                f"expected {what}, found {token.value!r}", token.position
            )
        if token.upper in _KEYWORDS:
            raise ParseError(
                f"keyword {token.upper} cannot be used as {what}",
                token.position,
            )
        self.advance()
        return str(token.value)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_statement(self):
        if self.at_keyword("SELECT"):
            stmt = self.parse_select()
        elif self.at_keyword("CREATE"):
            stmt = self.parse_create_table()
        elif self.at_keyword("INSERT"):
            stmt = self.parse_insert()
        elif self.at_keyword("UPDATE"):
            stmt = self.parse_update()
        elif self.at_keyword("DELETE"):
            stmt = self.parse_delete()
        else:
            raise ParseError(
                f"expected SELECT, CREATE, INSERT, UPDATE or DELETE, "
                f"found {self.peek().value!r}",
                self.peek().position,
            )
        self.accept_symbol(";")
        if self.peek().kind != EOF:
            raise ParseError(
                f"unexpected trailing input: {self.peek().value!r}",
                self.peek().position,
            )
        return stmt

    # -- SELECT ---------------------------------------------------------

    def parse_select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        items = [self.parse_select_item()]
        while self.accept_symbol(","):
            items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        tables = [self.parse_table_ref()]
        while self.accept_symbol(","):
            tables.append(self.parse_table_ref())
        where = self.parse_where_clause()
        group_by: list[ast.ColumnRef] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_column_ref())
            while self.accept_symbol(","):
                group_by.append(self.parse_column_ref())
        having: list[ast.HavingCondition] = []
        if self.accept_keyword("HAVING"):
            having.append(self.parse_having_condition())
            while self.accept_keyword("AND"):
                having.append(self.parse_having_condition())
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_symbol(","):
                order_by.append(self.parse_order_item())
        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.peek()
            if token.kind != NUMBER or not isinstance(token.value, int):
                raise ParseError("LIMIT requires an integer", token.position)
            self.advance()
            limit = int(token.value)
        return ast.Select(
            items=items, tables=tables, where=where,
            group_by=group_by, having=having, order_by=order_by,
            limit=limit,
        )

    def parse_where_clause(self) -> list:
        where: list = []
        if self.accept_keyword("WHERE"):
            where.extend(self.parse_condition())
            while self.accept_keyword("AND"):
                where.extend(self.parse_condition())
        return where

    def parse_having_condition(self) -> ast.HavingCondition:
        target = self.parse_select_item()
        token = self.peek()
        if token.kind != SYMBOL or token.value not in _COMPARISONS:
            raise ParseError(
                f"expected a comparison in HAVING, found {token.value!r}",
                token.position,
            )
        self.advance()
        op = "<>" if token.value == "!=" else str(token.value)
        value = self.parse_literal_value()
        return ast.HavingCondition(target=target, op=op, value=value)

    def parse_select_item(self):
        token = self.peek()
        following = self.tokens[self.pos + 1]
        is_call = (
            token.kind == IDENT
            and token.upper.lower() in ast.AGGREGATE_FUNCS
            and following.kind == SYMBOL
            and following.value == "("
        )
        if not is_call:
            return self.parse_column_ref()
        func = str(self.advance().value).lower()
        self.expect_symbol("(")
        if self.accept_symbol("*"):
            if func != "count":
                raise ParseError(
                    f"{func}(*) is not valid; only COUNT(*) takes *",
                    token.position,
                )
            column = None
        else:
            column = self.parse_column_ref()
        self.expect_symbol(")")
        return ast.AggregateRef(func=func, column=column)

    def parse_order_item(self) -> ast.OrderItem:
        column = self.parse_column_ref()
        ascending = True
        token = self.peek()
        if token.kind == IDENT and token.upper in ("ASC", "DESC"):
            ascending = token.upper == "ASC"
            self.advance()
        return ast.OrderItem(column=column, ascending=ascending)

    def parse_table_ref(self) -> ast.TableRef:
        table = self.expect_ident("table name")
        alias = None
        self.accept_keyword("AS")
        token = self.peek()
        if token.kind == IDENT and token.upper not in _KEYWORDS:
            alias = self.expect_ident("table alias")
        return ast.TableRef(table=table, alias=alias)

    def parse_column_ref(self) -> ast.ColumnRef:
        first = self.expect_ident("column name")
        if self.accept_symbol("."):
            second = self.expect_ident("column name")
            return ast.ColumnRef(name=second, qualifier=first)
        return ast.ColumnRef(name=first)

    def parse_condition(self) -> list:
        left = self.parse_operand()
        if self.accept_keyword("IN"):
            if not isinstance(left, ast.ColumnRef):
                raise ParseError(
                    "IN requires a column on its left side",
                    self.peek().position,
                )
            self.expect_symbol("(")
            values = [self.parse_literal_value()]
            while self.accept_symbol(","):
                values.append(self.parse_literal_value())
            self.expect_symbol(")")
            return [ast.InList(column=left, values=tuple(values))]
        if self.accept_keyword("BETWEEN"):
            low = self.parse_operand()
            self.expect_keyword("AND")
            high = self.parse_operand()
            return [
                ast.Comparison(left, ">=", low),
                ast.Comparison(left, "<=", high),
            ]
        token = self.peek()
        if token.kind != SYMBOL or token.value not in _COMPARISONS:
            raise ParseError(
                f"expected a comparison operator, found {token.value!r}",
                token.position,
            )
        self.advance()
        op = "<>" if token.value == "!=" else str(token.value)
        right = self.parse_operand()
        return [ast.Comparison(left, op, right)]

    def parse_operand(self):
        token = self.peek()
        if token.kind in (NUMBER, STRING, DATE):
            self.advance()
            return ast.Literal(token.value)
        if (
            self.at_keyword("DATE")
            and self.tokens[self.pos + 1].kind == STRING
        ):
            # DATE 'YYYY-MM-DD' typed literal (otherwise DATE is a column).
            self.advance()
            lit = self.advance()
            try:
                value = datetime.date.fromisoformat(str(lit.value))
            except ValueError as exc:
                raise ParseError(f"invalid date literal: {exc}", lit.position)
            return ast.Literal(value)
        return self.parse_column_ref()

    # -- CREATE TABLE ----------------------------------------------------

    def parse_create_table(self) -> ast.CreateTable:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        name = self.expect_ident("table name")
        self.expect_symbol("(")
        columns = [self.parse_column_clause()]
        while self.accept_symbol(","):
            columns.append(self.parse_column_clause())
        self.expect_symbol(")")
        return ast.CreateTable(name=name, columns=columns)

    def parse_column_clause(self) -> ast.ColumnClause:
        name = self.expect_ident("column name")
        clause = ast.ColumnClause(
            name=name, type_name=None, type_length=None
        )
        token = self.peek()
        if token.kind == IDENT and token.upper not in (
            "REFERENCES", "PRIMARY", "HIDDEN",
        ):
            clause.type_name = str(self.advance().value)
            if self.accept_symbol("("):
                length = self.peek()
                if length.kind != NUMBER or not isinstance(length.value, int):
                    raise ParseError(
                        "type length must be an integer", length.position
                    )
                self.advance()
                clause.type_length = int(length.value)
                self.expect_symbol(")")
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                clause.primary_key = True
            elif self.accept_keyword("HIDDEN"):
                clause.hidden = True
            elif self.accept_keyword("REFERENCES"):
                clause.ref_table = self.expect_ident("referenced table")
                self.expect_symbol("(")
                clause.ref_column = self.expect_ident("referenced column")
                self.expect_symbol(")")
            else:
                break
        if clause.type_name is None and clause.ref_table is None:
            raise ParseError(
                f"column {name!r} needs a type or a REFERENCES clause",
                self.peek().position,
            )
        return clause

    # -- INSERT ----------------------------------------------------------

    def parse_insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident("table name")
        self.expect_keyword("VALUES")
        rows = [self.parse_value_row()]
        while self.accept_symbol(","):
            rows.append(self.parse_value_row())
        return ast.Insert(table=table, values=rows)

    def parse_value_row(self) -> list[object]:
        self.expect_symbol("(")
        values = [self.parse_literal_value()]
        while self.accept_symbol(","):
            values.append(self.parse_literal_value())
        self.expect_symbol(")")
        return values

    def parse_literal_value(self):
        operand = self.parse_operand()
        if not isinstance(operand, ast.Literal):
            raise ParseError(
                "expected a literal value", self.peek().position
            )
        return operand.value

    # -- UPDATE / DELETE -------------------------------------------------

    def parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident("table name")
        self.expect_keyword("SET")
        assignments = [self.parse_assignment()]
        while self.accept_symbol(","):
            assignments.append(self.parse_assignment())
        where = self.parse_where_clause()
        return ast.Update(table=table, assignments=assignments, where=where)

    def parse_assignment(self) -> ast.Assignment:
        column = self.parse_column_ref()
        self.expect_symbol("=")
        value = self.parse_literal_value()
        return ast.Assignment(column=column, value=value)

    def parse_delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident("table name")
        where = self.parse_where_clause()
        return ast.Delete(table=table, where=where)


def parse_statement(text: str):
    """Parse one SQL statement into its AST."""
    return _Parser(text).parse_statement()
