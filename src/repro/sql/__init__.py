"""SQL front end.

GhostDB requires "minimal changes to schema definitions and no changes to
the SQL query text" (Section 1): ``CREATE TABLE`` gains the ``HIDDEN``
keyword, and SELECT-project-join queries are plain SQL.  This package
parses that dialect and *binds* queries against the catalog, which is
where each predicate is classified as hidden or visible -- the
classification that drives the whole distributed execution.
"""

from repro.sql.errors import BindError, ParseError, SqlError
from repro.sql.lexer import Token, tokenize
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    CreateTable,
    Insert,
    Literal,
    Select,
    TableRef,
)
from repro.sql.parser import parse_statement
from repro.sql.binder import Binder, BoundQuery, JoinEdge, Predicate

__all__ = [
    "BindError",
    "Binder",
    "BoundQuery",
    "ColumnRef",
    "Comparison",
    "CreateTable",
    "Insert",
    "JoinEdge",
    "Literal",
    "ParseError",
    "Predicate",
    "Select",
    "SqlError",
    "TableRef",
    "Token",
    "parse_statement",
    "tokenize",
]
