"""SQL tokenizer.

Hand-rolled scanner producing a flat token list.  Notable dialect points:

* string literals accept single *or* double quotes (the paper writes
  ``Vis.Purpose = "Sclerosis"``), with doubled-quote escaping;
* date literals may be written ``DATE '2006-11-05'`` (handled in the
  parser) or as bare ``05-11-2006`` / ``2006-11-05`` tokens, which the
  scanner emits as DATE tokens -- the paper's own query uses the bare
  European form;
* identifiers are case-insensitive; keywords are recognised in the parser
  so new keywords never break identifiers-as-names.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass

from repro.sql.errors import ParseError

#: Token kinds.
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
DATE = "DATE"
SYMBOL = "SYMBOL"
EOF = "EOF"

_SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ";", ".", "*")

_BARE_DATE = re.compile(
    r"(?:(\d{4})-(\d{2})-(\d{2})|(\d{2})-(\d{2})-(\d{4}))(?![\w-])"
)
_NUMBER = re.compile(r"\d+(\.\d+)?(?![\w.])")
_IDENT = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")
_WS_OR_COMMENT = re.compile(r"(?:\s+|--[^\n]*|/\*.*?\*/)+", re.DOTALL)


@dataclass(frozen=True)
class Token:
    kind: str
    value: object
    position: int

    @property
    def upper(self) -> str:
        """Uppercased text, for keyword checks on IDENT/SYMBOL tokens."""
        return str(self.value).upper()


def _parse_bare_date(match: re.Match) -> datetime.date:
    if match.group(1):
        year, month, day = (int(match.group(i)) for i in (1, 2, 3))
    else:
        day, month, year = (int(match.group(i)) for i in (4, 5, 6))
    try:
        return datetime.date(year, month, day)
    except ValueError as exc:
        raise ParseError(f"invalid date literal: {exc}", match.start())


def tokenize(text: str) -> list[Token]:
    """Scan ``text`` into tokens, ending with an EOF token."""
    tokens: list[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        ws = _WS_OR_COMMENT.match(text, pos)
        if ws:
            pos = ws.end()
            continue
        if pos >= length:
            break
        ch = text[pos]
        if ch in ("'", '"'):
            end = pos + 1
            parts: list[str] = []
            while True:
                if end >= length:
                    raise ParseError("unterminated string literal", pos)
                if text[end] == ch:
                    if end + 1 < length and text[end + 1] == ch:
                        parts.append(ch)
                        end += 2
                        continue
                    break
                parts.append(text[end])
                end += 1
            tokens.append(Token(STRING, "".join(parts), pos))
            pos = end + 1
            continue
        date_match = _BARE_DATE.match(text, pos)
        if date_match:
            tokens.append(Token(DATE, _parse_bare_date(date_match), pos))
            pos = date_match.end()
            continue
        num_match = _NUMBER.match(text, pos)
        if num_match:
            literal = num_match.group(0)
            value = float(literal) if "." in literal else int(literal)
            tokens.append(Token(NUMBER, value, pos))
            pos = num_match.end()
            continue
        ident_match = _IDENT.match(text, pos)
        if ident_match:
            tokens.append(Token(IDENT, ident_match.group(0), pos))
            pos = ident_match.end()
            continue
        for sym in _SYMBOLS:
            if text.startswith(sym, pos):
                tokens.append(Token(SYMBOL, sym, pos))
                pos += len(sym)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", pos)
    tokens.append(Token(EOF, None, length))
    return tokens
