"""SQL error hierarchy."""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all SQL front-end errors."""


class ParseError(SqlError):
    """Lexical or syntactic error, with source position."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class BindError(SqlError):
    """Semantic error: unknown names, bad joins, type mismatches."""
