"""DDL execution: CREATE TABLE AST -> catalog definitions.

A REFERENCES column without an explicit type (the paper's
``DocID REFERENCES Doctor(DocID) HIDDEN`` style) inherits the referenced
primary key's type, so the referenced table must be created first.
"""

from __future__ import annotations

from repro.catalog.schema import ColumnDef, ForeignKey, Schema, SchemaError, TableDef
from repro.sql import ast
from repro.storage.types import TypeError_, type_from_sql


def create_table(schema: Schema, stmt: ast.CreateTable) -> TableDef:
    """Apply a parsed CREATE TABLE to ``schema``; returns the new table."""
    columns: list[ColumnDef] = []
    for clause in stmt.columns:
        references = None
        if clause.ref_table is not None:
            if not schema.has_table(clause.ref_table):
                raise SchemaError(
                    f"{stmt.name}.{clause.name} references "
                    f"{clause.ref_table!r}, which does not exist yet; "
                    f"create referenced tables first"
                )
            references = ForeignKey(
                table=clause.ref_table, column=clause.ref_column
            )
        if clause.type_name is not None:
            try:
                dtype = type_from_sql(clause.type_name, clause.type_length)
            except TypeError_ as exc:
                raise SchemaError(f"{stmt.name}.{clause.name}: {exc}") from exc
        else:
            target = schema.table(clause.ref_table)
            dtype = target.column(clause.ref_column).dtype
        columns.append(
            ColumnDef(
                name=clause.name,
                dtype=dtype,
                hidden=clause.hidden,
                primary_key=clause.primary_key,
                references=references,
            )
        )
    table = TableDef(name=stmt.name, columns=columns)
    schema.add(table)
    return table
