"""Abstract syntax trees for the GhostDB SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ColumnRef:
    """``qualifier.name`` or bare ``name`` (qualifier resolved at bind)."""

    name: str
    qualifier: str | None = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Literal:
    """A constant: int, float, str or datetime.date."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class Comparison:
    """``left op right`` where operands are ColumnRef or Literal.

    BETWEEN is desugared by the parser into two comparisons.
    """

    left: object
    op: str  # one of =, <>, <, <=, >, >=
    right: object

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class InList:
    """``column IN (v1, v2, ...)``."""

    column: ColumnRef
    values: tuple

    def __str__(self) -> str:
        inner = ", ".join(str(Literal(v)) for v in self.values)
        return f"{self.column} IN ({inner})"


#: Aggregate function names the dialect supports.
AGGREGATE_FUNCS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class AggregateRef:
    """``FUNC(column)`` or ``COUNT(*)`` in a select list."""

    func: str  # lower case, one of AGGREGATE_FUNCS
    column: ColumnRef | None = None  # None only for COUNT(*)

    def __str__(self) -> str:
        inner = "*" if self.column is None else str(self.column)
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class HavingCondition:
    """``HAVING target op literal`` where target is an aggregate or a
    grouping column."""

    target: object  # AggregateRef | ColumnRef
    op: str
    value: object

    def __str__(self) -> str:
        return f"{self.target} {self.op} {Literal(self.value)}"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    column: ColumnRef
    ascending: bool = True

    def __str__(self) -> str:
        return f"{self.column} {'ASC' if self.ascending else 'DESC'}"


@dataclass(frozen=True)
class TableRef:
    """``table [alias]`` in a FROM clause."""

    table: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return (self.alias or self.table).lower()


@dataclass
class Select:
    """A select-project-join query: conjunctive WHERE only.

    ``items`` may mix :class:`ColumnRef` and :class:`AggregateRef`;
    ``where`` mixes :class:`Comparison` and :class:`InList`.
    """

    items: list
    tables: list[TableRef]
    where: list = field(default_factory=list)
    group_by: list[ColumnRef] = field(default_factory=list)
    having: list["HavingCondition"] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None


@dataclass
class ColumnClause:
    """One column definition inside CREATE TABLE."""

    name: str
    type_name: str | None  # None when the type is inherited via REFERENCES
    type_length: int | None
    primary_key: bool = False
    hidden: bool = False
    ref_table: str | None = None
    ref_column: str | None = None


@dataclass
class CreateTable:
    name: str
    columns: list[ColumnClause]


@dataclass
class Insert:
    table: str
    values: list[list[object]]


@dataclass(frozen=True)
class Assignment:
    """``column = literal`` inside an UPDATE's SET list."""

    column: ColumnRef
    value: object

    def __str__(self) -> str:
        return f"{self.column} = {Literal(self.value)}"


@dataclass
class Update:
    """``UPDATE t SET col = lit, ... [WHERE ...]``.

    ``where`` mixes :class:`Comparison` and :class:`InList`, conjunctive
    only, exactly like :class:`Select`.
    """

    table: str
    assignments: list[Assignment]
    where: list = field(default_factory=list)


@dataclass
class Delete:
    """``DELETE FROM t [WHERE ...]``."""

    table: str
    where: list = field(default_factory=list)
