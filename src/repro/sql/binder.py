"""Semantic analysis: from AST to a bound, classified query.

Binding resolves aliases and column names against the catalog, validates
that the FROM tables form a connected subtree of the schema tree joined by
proper FK = PK predicates, and -- the GhostDB-specific part -- classifies
every selection predicate as **hidden** (its column lives only on the
device) or **visible** (its column lives on the public side).  That
classification is the input to the Pre-/Post-/Cross-filtering strategy
space of Section 4.

The binder also normalises predicates: BETWEEN has already been desugared
by the parser, and multiple inequalities on one column are merged into a
single interval so the climbing index is consulted once per column.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.catalog.schema import ColumnDef, TableDef
from repro.catalog.tree import SchemaTree
from repro.sql import ast
from repro.sql.errors import BindError
from repro.storage.types import (
    CharType,
    DataType,
    DateType,
    FloatType,
    IntegerType,
)

#: Predicate kinds after normalisation.
EQ = "eq"
NEQ = "neq"
RANGE = "range"
IN = "in"


@dataclass
class Predicate:
    """A normalised selection predicate on one column."""

    table: str  # real table name, lower case
    column: str  # column name, lower case
    column_def: ColumnDef
    kind: str  # EQ, NEQ, RANGE or IN
    value: object = None  # for EQ / NEQ
    low: object = None  # for RANGE (None = open)
    low_inclusive: bool = True
    high: object = None
    high_inclusive: bool = True
    values: tuple = ()  # for IN, sorted and deduplicated

    @property
    def hidden(self) -> bool:
        return self.column_def.hidden

    def matches(self, value) -> bool:
        """Evaluate the predicate against a concrete value."""
        if self.kind == EQ:
            return value == self.value
        if self.kind == NEQ:
            return value != self.value
        if self.kind == IN:
            return value in self.values
        if self.low is not None:
            if self.low_inclusive:
                if value < self.low:
                    return False
            elif value <= self.low:
                return False
        if self.high is not None:
            if self.high_inclusive:
                if value > self.high:
                    return False
            elif value >= self.high:
                return False
        return True

    def describe(self) -> str:
        name = f"{self.table}.{self.column}"
        if self.kind == EQ:
            return f"{name} = {self.value!r}"
        if self.kind == NEQ:
            return f"{name} <> {self.value!r}"
        if self.kind == IN:
            inner = ", ".join(repr(v) for v in self.values)
            return f"{name} IN ({inner})"
        parts = []
        if self.low is not None:
            parts.append(f"{name} {'>=' if self.low_inclusive else '>'} {self.low!r}")
        if self.high is not None:
            parts.append(f"{name} {'<=' if self.high_inclusive else '<'} {self.high!r}")
        return " AND ".join(parts) if parts else f"{name}: true"


@dataclass(frozen=True)
class JoinEdge:
    """A validated tree join: ``parent.fk_column = child`` primary key."""

    parent: str  # referencing table (closer to the root), lower case
    fk_column: str
    child: str  # referenced table, lower case


@dataclass
class BoundAggregate:
    """A resolved aggregate: function + argument column (None = COUNT(*))."""

    func: str
    table: str | None
    column: ColumnDef | None
    #: index into BoundQuery.projections of the argument column.
    input_index: int | None

    def label(self) -> str:
        if self.column is None:
            return "count(*)"
        return f"{self.func}({self.table}.{self.column.name})"

    def output_dtype(self) -> DataType:
        if self.func == "count":
            return IntegerType()
        if self.func == "avg":
            return FloatType()
        return self.column.dtype


@dataclass
class BoundQuery:
    """A fully resolved SPJ query, ready for the optimizer."""

    select: ast.Select
    #: binding name (alias or table) -> TableDef
    bindings: dict[str, TableDef]
    #: real table names (lower) in the query, in FROM order.
    tables: list[str]
    #: the query's subtree root (ancestor of every other query table).
    root: str
    projections: list[tuple[str, ColumnDef]] = field(default_factory=list)
    predicates: list[Predicate] = field(default_factory=list)
    joins: list[JoinEdge] = field(default_factory=list)
    #: aggregates, in select-list order (empty for plain SPJ queries).
    aggregates: list[BoundAggregate] = field(default_factory=list)
    #: indexes into ``projections`` forming the GROUP BY key.
    group_by_indexes: list[int] = field(default_factory=list)
    #: output recipe when grouped: ("key", projection idx) or
    #: ("agg", aggregate idx), in select-list order.
    output_items: list[tuple[str, int]] = field(default_factory=list)
    #: final output column labels, in select-list order.
    output_labels: list[str] = field(default_factory=list)
    #: final output column types, in select-list order.
    output_dtypes: list[DataType] = field(default_factory=list)
    #: HAVING conditions: ("agg"|"key", index, op, literal).  The index
    #: addresses ``aggregates`` or ``projections`` respectively; HAVING
    #: aggregates absent from the select list are appended to
    #: ``aggregates`` without an output item.
    having: list[tuple[str, int, str, object]] = field(default_factory=list)
    #: (output column index, ascending) pairs, in ORDER BY order.
    order_by: list[tuple[int, bool]] = field(default_factory=list)
    limit: int | None = None

    @property
    def is_grouped(self) -> bool:
        return bool(self.aggregates) or bool(self.group_by_indexes)

    @property
    def hidden_predicates(self) -> list[Predicate]:
        return [p for p in self.predicates if p.hidden]

    @property
    def visible_predicates(self) -> list[Predicate]:
        return [p for p in self.predicates if not p.hidden]


@dataclass
class BoundAssignment:
    """One validated ``SET column = value`` target."""

    column: ColumnDef
    value: object


@dataclass
class BoundUpdate:
    """A fully resolved single-table UPDATE."""

    table: str  # real table name, lower case
    table_def: TableDef
    assignments: list[BoundAssignment]
    predicates: list[Predicate] = field(default_factory=list)


@dataclass
class BoundDelete:
    """A fully resolved single-table DELETE."""

    table: str  # real table name, lower case
    table_def: TableDef
    predicates: list[Predicate] = field(default_factory=list)


def compare_values(op: str, left, right) -> bool:
    """Apply a SQL comparison operator (used by HAVING evaluation)."""
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"unknown comparison operator {op!r}")


def _value_fits(dtype: DataType, value) -> bool:
    if isinstance(dtype, IntegerType):
        return isinstance(value, int) and not isinstance(value, bool)
    if isinstance(dtype, FloatType):
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if isinstance(dtype, DateType):
        return isinstance(value, datetime.date)
    if isinstance(dtype, CharType):
        return isinstance(value, str)
    return False


class Binder:
    """Binds parsed SELECT statements against a schema tree."""

    def __init__(self, tree: SchemaTree):
        self.tree = tree

    def bind(self, select: ast.Select) -> BoundQuery:
        bindings = self._bind_tables(select)
        tables = [t.name.lower() for t in bindings.values()]
        seen: set[str] = set()
        unique_tables = [t for t in tables if not (t in seen or seen.add(t))]
        root = self.tree.query_root(unique_tables)
        query = BoundQuery(
            select=select,
            bindings=bindings,
            tables=unique_tables,
            root=root,
        )
        self._bind_items(select, bindings, query)
        raw_selections: list[tuple[str, ColumnDef, str, object]] = []
        in_predicates: list[Predicate] = []
        for condition in select.where:
            if isinstance(condition, ast.InList):
                in_predicates.append(self._bind_in(condition, bindings))
                continue
            join = self._try_bind_join(condition, bindings)
            if join is not None:
                query.joins.append(join)
                continue
            raw_selections.append(
                self._bind_selection(condition, bindings)
            )
        query.predicates = self._normalise(raw_selections) + in_predicates
        self._bind_order_and_limit(select, bindings, query)
        self._check_join_completeness(query)
        return query

    # ------------------------------------------------------------------
    # UPDATE / DELETE
    # ------------------------------------------------------------------

    def bind_update(self, update: ast.Update) -> BoundUpdate:
        """Resolve a single-table UPDATE.

        Primary keys are immutable (row identity on both sides of the
        boundary) and foreign keys pin the schema tree's join edges, so
        neither may be assigned; values are type-checked with the same
        int -> float promotion as WHERE literals.
        """
        table_def = self.tree.table(update.table)
        table = table_def.name.lower()
        bindings = {table: table_def, update.table.lower(): table_def}
        assignments: list[BoundAssignment] = []
        assigned: set[str] = set()
        for item in update.assignments:
            target, column = self._resolve_column(item.column, bindings)
            if column.primary_key:
                raise BindError(
                    f"cannot assign to primary key {target}.{column.name}; "
                    f"row identity is immutable"
                )
            if column.references is not None:
                raise BindError(
                    f"cannot assign to foreign key {target}.{column.name}; "
                    f"schema-tree edges are immutable"
                )
            if column.name.lower() in assigned:
                raise BindError(
                    f"column {target}.{column.name} assigned twice"
                )
            assigned.add(column.name.lower())
            value = item.value
            if isinstance(column.dtype, FloatType) and isinstance(value, int):
                value = float(value)
            if not _value_fits(column.dtype, value):
                raise BindError(
                    f"assignment value {value!r} does not fit "
                    f"{target}.{column.name} ({column.dtype.sql_name()})"
                )
            assignments.append(
                BoundAssignment(column=column, value=value)
            )
        return BoundUpdate(
            table=table,
            table_def=table_def,
            assignments=assignments,
            predicates=self._bind_dml_where(update.where, bindings),
        )

    def bind_delete(self, delete: ast.Delete) -> BoundDelete:
        """Resolve a single-table DELETE."""
        table_def = self.tree.table(delete.table)
        table = table_def.name.lower()
        bindings = {table: table_def, delete.table.lower(): table_def}
        return BoundDelete(
            table=table,
            table_def=table_def,
            predicates=self._bind_dml_where(delete.where, bindings),
        )

    def _bind_dml_where(
        self, where: list, bindings: dict[str, TableDef]
    ) -> list[Predicate]:
        """Bind a DML WHERE: selections only, no join predicates."""
        raw_selections: list[tuple[str, ColumnDef, str, object]] = []
        in_predicates: list[Predicate] = []
        for condition in where:
            if isinstance(condition, ast.InList):
                in_predicates.append(self._bind_in(condition, bindings))
                continue
            if isinstance(condition.left, ast.ColumnRef) and isinstance(
                condition.right, ast.ColumnRef
            ):
                raise BindError(
                    f"UPDATE/DELETE are single-table; {condition} "
                    f"compares two columns"
                )
            raw_selections.append(
                self._bind_selection(condition, bindings)
            )
        return self._normalise(raw_selections) + in_predicates

    # ------------------------------------------------------------------
    # Select list, GROUP BY, ORDER BY, LIMIT
    # ------------------------------------------------------------------

    def _bind_items(
        self,
        select: ast.Select,
        bindings: dict[str, TableDef],
        query: BoundQuery,
    ) -> None:
        grouped = bool(select.group_by) or any(
            isinstance(item, ast.AggregateRef) for item in select.items
        )
        if not grouped:
            if select.having:
                raise BindError(
                    "HAVING requires GROUP BY or aggregate select items"
                )
            query.projections = [
                self._resolve_column(ref, bindings) for ref in select.items
            ]
            query.output_labels = [
                f"{t}.{c.name}" for t, c in query.projections
            ]
            query.output_dtypes = [c.dtype for _t, c in query.projections]
            return

        projections: list[tuple[str, ColumnDef]] = []

        def projection_index(table: str, column: ColumnDef) -> int:
            for i, (t, c) in enumerate(projections):
                if t == table and c.name.lower() == column.name.lower():
                    return i
            projections.append((table, column))
            return len(projections) - 1

        group_keys = [
            self._resolve_column(ref, bindings) for ref in select.group_by
        ]
        query.group_by_indexes = [
            projection_index(t, c) for t, c in group_keys
        ]
        group_set = {
            (t, c.name.lower()) for t, c in group_keys
        }
        for item in select.items:
            if isinstance(item, ast.AggregateRef):
                if item.column is None:
                    aggregate = BoundAggregate(
                        func="count", table=None, column=None,
                        input_index=None,
                    )
                else:
                    table, column = self._resolve_column(
                        item.column, bindings
                    )
                    if item.func in ("sum", "avg") and not isinstance(
                        column.dtype, (IntegerType, FloatType)
                    ):
                        raise BindError(
                            f"{item.func}() requires a numeric column; "
                            f"{table}.{column.name} is "
                            f"{column.dtype.sql_name()}"
                        )
                    aggregate = BoundAggregate(
                        func=item.func, table=table, column=column,
                        input_index=projection_index(table, column),
                    )
                query.aggregates.append(aggregate)
                query.output_items.append(
                    ("agg", len(query.aggregates) - 1)
                )
                query.output_labels.append(aggregate.label())
                query.output_dtypes.append(aggregate.output_dtype())
            else:
                table, column = self._resolve_column(item, bindings)
                if (table, column.name.lower()) not in group_set:
                    raise BindError(
                        f"{table}.{column.name} appears in the select "
                        f"list but not in GROUP BY"
                    )
                query.output_items.append(
                    ("key", projection_index(table, column))
                )
                query.output_labels.append(f"{table}.{column.name}")
                query.output_dtypes.append(column.dtype)

        for condition in select.having:
            query.having.append(
                self._bind_having(
                    condition, bindings, query, projection_index, group_set
                )
            )
        query.projections = projections

    def _bind_having(
        self, condition, bindings, query, projection_index, group_set
    ) -> tuple[str, int, str, object]:
        op = "<>" if condition.op == "!=" else condition.op
        target = condition.target
        value = condition.value
        if isinstance(target, ast.ColumnRef):
            table, column = self._resolve_column(target, bindings)
            if (table, column.name.lower()) not in group_set:
                raise BindError(
                    f"HAVING column {table}.{column.name} must be a "
                    f"GROUP BY key (use an aggregate otherwise)"
                )
            if isinstance(column.dtype, FloatType) and isinstance(value, int):
                value = float(value)
            if not _value_fits(column.dtype, value):
                raise BindError(
                    f"HAVING literal {value!r} does not fit "
                    f"{table}.{column.name}"
                )
            return ("key", projection_index(table, column), op, value)
        # Aggregate target: reuse a matching select-list aggregate or
        # register a new, output-less one.
        if target.column is None:
            candidate = BoundAggregate(
                func="count", table=None, column=None, input_index=None
            )
        else:
            table, column = self._resolve_column(target.column, bindings)
            if target.func in ("sum", "avg") and not isinstance(
                column.dtype, (IntegerType, FloatType)
            ):
                raise BindError(
                    f"{target.func}() requires a numeric column"
                )
            candidate = BoundAggregate(
                func=target.func, table=table, column=column,
                input_index=projection_index(table, column),
            )
        index = None
        for i, existing in enumerate(query.aggregates):
            same_col = (
                (existing.column is None and candidate.column is None)
                or (
                    existing.column is not None
                    and candidate.column is not None
                    and existing.table == candidate.table
                    and existing.column.name == candidate.column.name
                )
            )
            if existing.func == candidate.func and same_col:
                index = i
                break
        if index is None:
            query.aggregates.append(candidate)
            index = len(query.aggregates) - 1
        dtype = query.aggregates[index].output_dtype()
        if isinstance(dtype, FloatType) and isinstance(value, int):
            value = float(value)
        if not _value_fits(dtype, value):
            raise BindError(
                f"HAVING literal {value!r} does not fit "
                f"{query.aggregates[index].label()} "
                f"({dtype.sql_name()})"
            )
        return ("agg", index, op, value)

    def _bind_order_and_limit(
        self,
        select: ast.Select,
        bindings: dict[str, TableDef],
        query: BoundQuery,
    ) -> None:
        if select.limit is not None:
            if select.limit < 0:
                raise BindError("LIMIT cannot be negative")
            query.limit = select.limit
        for item in select.order_by:
            table, column = self._resolve_column(item.column, bindings)
            target = None
            if query.is_grouped:
                for out_idx, (kind, ref) in enumerate(query.output_items):
                    if kind != "key":
                        continue
                    t, c = query.projections[ref]
                    if t == table and c.name.lower() == column.name.lower():
                        target = out_idx
                        break
            else:
                for out_idx, (t, c) in enumerate(query.projections):
                    if t == table and c.name.lower() == column.name.lower():
                        target = out_idx
                        break
            if target is None:
                raise BindError(
                    f"ORDER BY column {table}.{column.name} must appear "
                    f"in the select list"
                )
            query.order_by.append((target, item.ascending))

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------

    def _bind_tables(self, select: ast.Select) -> dict[str, TableDef]:
        bindings: dict[str, TableDef] = {}
        for ref in select.tables:
            table = self.tree.table(ref.table)  # raises on unknown
            name = ref.binding_name
            if name in bindings:
                raise BindError(
                    f"duplicate table binding {name!r}; GhostDB queries "
                    f"use each table once (tree schemas have no self-joins)"
                )
            bindings[name] = table
        return bindings

    # ------------------------------------------------------------------
    # Column resolution
    # ------------------------------------------------------------------

    def _resolve_column(
        self, ref: ast.ColumnRef, bindings: dict[str, TableDef]
    ) -> tuple[str, ColumnDef]:
        if ref.qualifier is not None:
            key = ref.qualifier.lower()
            if key not in bindings:
                raise BindError(f"unknown table or alias {ref.qualifier!r}")
            table = bindings[key]
            return table.name.lower(), table.column(ref.name)
        matches = [
            (table.name.lower(), table.column(ref.name))
            for table in bindings.values()
            if table.has_column(ref.name)
        ]
        if not matches:
            raise BindError(f"unknown column {ref.name!r}")
        if len(matches) > 1:
            owners = sorted({t for t, _c in matches})
            raise BindError(
                f"ambiguous column {ref.name!r} (in tables {owners})"
            )
        return matches[0]

    # ------------------------------------------------------------------
    # WHERE clause
    # ------------------------------------------------------------------

    def _try_bind_join(
        self, comparison: ast.Comparison, bindings: dict[str, TableDef]
    ) -> JoinEdge | None:
        left, right = comparison.left, comparison.right
        if not (
            isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef)
        ):
            return None
        if comparison.op != "=":
            raise BindError(
                f"column-to-column comparison {comparison} must be an "
                f"equijoin"
            )
        lt, lc = self._resolve_column(left, bindings)
        rt, rc = self._resolve_column(right, bindings)
        for (t1, c1), (t2, c2) in (((lt, lc), (rt, rc)), ((rt, rc), (lt, lc))):
            if c1.references is not None and c2.primary_key:
                fk = c1.references
                if (
                    fk.table.lower() == t2
                    and fk.column.lower() == c2.name.lower()
                ):
                    return JoinEdge(parent=t1, fk_column=c1.name.lower(), child=t2)
        raise BindError(
            f"join {comparison} does not follow a foreign-key edge of the "
            f"schema tree"
        )

    def _bind_in(
        self, condition: ast.InList, bindings: dict[str, TableDef]
    ) -> Predicate:
        table, column = self._resolve_column(condition.column, bindings)
        values = []
        for value in condition.values:
            if isinstance(column.dtype, FloatType) and isinstance(value, int):
                value = float(value)
            if not _value_fits(column.dtype, value):
                raise BindError(
                    f"IN value {value!r} does not fit "
                    f"{table}.{column.name} ({column.dtype.sql_name()})"
                )
            values.append(value)
        unique = tuple(sorted(set(values)))
        return Predicate(
            table=table, column=column.name.lower(), column_def=column,
            kind=IN, values=unique,
        )

    def _bind_selection(
        self, comparison: ast.Comparison, bindings: dict[str, TableDef]
    ) -> tuple[str, ColumnDef, str, object]:
        left, right = comparison.left, comparison.right
        op = comparison.op
        if isinstance(left, ast.Literal) and isinstance(right, ast.ColumnRef):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            op = flipped.get(op, op)
            left, right = right, left
        if not (
            isinstance(left, ast.ColumnRef) and isinstance(right, ast.Literal)
        ):
            raise BindError(
                f"unsupported predicate {comparison}; selections compare a "
                f"column with a literal"
            )
        table, column = self._resolve_column(left, bindings)
        value = right.value
        # Allow integer literals against FLOAT columns and promote.
        if isinstance(column.dtype, FloatType) and isinstance(value, int):
            value = float(value)
        if not _value_fits(column.dtype, value):
            raise BindError(
                f"literal {value!r} does not fit "
                f"{table}.{column.name} ({column.dtype.sql_name()})"
            )
        return table, column, op, value

    @staticmethod
    def _normalise(
        raw: list[tuple[str, ColumnDef, str, object]]
    ) -> list[Predicate]:
        """Merge per-column comparisons into EQ / NEQ / RANGE predicates."""
        grouped: dict[tuple[str, str], list[tuple[str, object]]] = {}
        defs: dict[tuple[str, str], ColumnDef] = {}
        order: list[tuple[str, str]] = []
        for table, column, op, value in raw:
            key = (table, column.name.lower())
            if key not in grouped:
                grouped[key] = []
                defs[key] = column
                order.append(key)
            grouped[key].append((op, value))
        predicates: list[Predicate] = []
        for key in order:
            table, column = key
            cdef = defs[key]
            eq_values = [v for op, v in grouped[key] if op == "="]
            neq_values = [v for op, v in grouped[key] if op == "<>"]
            bounds = [(op, v) for op, v in grouped[key] if op not in ("=", "<>")]
            if len(set(map(repr, eq_values))) > 1:
                raise BindError(
                    f"contradictory equality predicates on {table}.{column}"
                )
            if eq_values:
                predicates.append(
                    Predicate(table, column, cdef, EQ, value=eq_values[0])
                )
            elif bounds:
                pred = Predicate(table, column, cdef, RANGE)
                for op, value in bounds:
                    if op in (">", ">="):
                        better = pred.low is None or value > pred.low or (
                            value == pred.low and op == ">"
                        )
                        if better:
                            pred.low = value
                            pred.low_inclusive = op == ">="
                    else:
                        better = pred.high is None or value < pred.high or (
                            value == pred.high and op == "<"
                        )
                        if better:
                            pred.high = value
                            pred.high_inclusive = op == "<="
                predicates.append(pred)
            for value in neq_values:
                predicates.append(
                    Predicate(table, column, cdef, NEQ, value=value)
                )
        return predicates

    # ------------------------------------------------------------------
    # Join completeness
    # ------------------------------------------------------------------

    def _check_join_completeness(self, query: BoundQuery) -> None:
        """Every non-root query table must be joined to its tree parent."""
        joined = {(j.parent, j.child) for j in query.joins}
        for table in query.tables:
            if table == query.root:
                continue
            parent_info = self.tree.parent_of(table)
            if parent_info is None or parent_info[0] not in query.tables:
                raise BindError(
                    f"table {table!r} cannot join to the rest of the query: "
                    f"its referencing table is not in the FROM clause"
                )
            parent = parent_info[0]
            if (parent, table) not in joined:
                raise BindError(
                    f"missing join predicate between {parent!r} and "
                    f"{table!r} (cartesian products are not supported)"
                )
