"""``ghostdb serve``: the device as a shared service.

The paper's deployment sketch -- one smart USB key, several client
terminals -- as a process: a TCP server multiplexes line-framed JSON
requests from many clients over one :class:`~repro.core.ghostdb.GhostDB`
device, with per-client leased sessions and the deficit-round-robin
scheduler interleaving their queries at batch-window boundaries.

Trust model: the TCP connection plays the *secure rendering path*
between the device and each client's terminal -- result rows are
allowed on it.  The spied channel is still the simulated USB link
inside the device model; its capture (``db.usb_log``) is what a leak
check inspects, and serving many clients changes nothing about what
crosses it.

Wire protocol (one JSON object per line, UTF-8)::

    -> {"op": "hello", "name": "alice", "ram": 16384, "token": "..."}
    <- {"ok": true, "session": "alice", "ram": 16384}
    -> {"op": "sql", "sql": "SELECT ..."}
    <- {"ok": true, "columns": [...], "rows": [[...]], "row_count": 3,
        "sim_seconds": 0.0123, "steps": 4}
    -> {"op": "bye"}
    <- {"ok": true}

Errors come back as ``{"ok": false, "error": "...", "kind": "..."}``;
the connection survives statement errors and dies on framing errors.
``hello`` blocks while the device's session cap or RAM budget is
exhausted and is admitted when a slot frees (queued admission).

Concurrency model: socket handler threads only do I/O and enqueue
commands; a single pump thread owns the device, drains the queue,
submits each round's statements to one :class:`Scheduler` and runs
them to completion.  The engine itself stays single-threaded -- client
concurrency becomes deterministic cooperative interleaving on the
simulated clock, journalled to the flight recorder.
"""

from __future__ import annotations

import argparse
import json
import queue
import socket
import socketserver
import sys
import threading

from repro.core.ghostdb import AdmissionError, GhostDB, SessionError
from repro.core.scheduler import Scheduler
from repro.faults import GhostDBFaultError
from repro.obs import get_logger

log = get_logger(__name__)

DEFAULT_PORT = 8707


class _Command:
    """One client request travelling from a handler thread to the pump."""

    __slots__ = ("op", "payload", "reply", "done")

    def __init__(self, op: str, payload: dict):
        self.op = op
        self.payload = payload
        self.reply: dict | None = None
        self.done = threading.Event()

    def resolve(self, reply: dict) -> None:
        self.reply = reply
        self.done.set()

    def wait(self) -> dict:
        self.done.wait()
        return self.reply


def _error(message: str, kind: str = "error") -> dict:
    return {"ok": False, "error": message, "kind": kind}


class GhostDBServer:
    """The pump: sole owner of the device, fed by handler threads."""

    def __init__(self, db: GhostDB, token: str | None = None):
        self.db = db
        self.token = token
        self.scheduler = Scheduler(db.core)
        self.commands: "queue.Queue[_Command]" = queue.Queue()
        #: hello commands parked until a session slot frees, FIFO.
        self._waiting: list[_Command] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- handler-thread side -------------------------------------------

    def call(self, op: str, payload: dict) -> dict:
        """Enqueue one command and block for the pump's reply."""
        command = _Command(op, payload)
        self.commands.put(command)
        return command.wait()

    # -- pump side ------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._pump, name="ghostdb-pump", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self.commands.put(_Command("noop", {}))
        if self._thread is not None:
            self._thread.join()
        for command in self._waiting:
            command.resolve(_error("server shutting down", "shutdown"))
        self._waiting.clear()

    def _pump(self) -> None:
        while not self._stop.is_set():
            batch = [self.commands.get()]
            while True:
                try:
                    batch.append(self.commands.get_nowait())
                except queue.Empty:
                    break
            if self._stop.is_set():
                for command in batch:
                    command.resolve(_error("server shutting down", "shutdown"))
                continue
            self._round(batch)

    def _round(self, batch: list[_Command]) -> None:
        """One scheduling round: session admin first, then every SQL
        command in the batch interleaved under the scheduler."""
        statements: list[tuple[_Command, object]] = []
        for command in batch:
            if command.op == "hello":
                self._admit(command)
            elif command.op == "bye":
                self._close(command)
                self._drain_waiters()
            elif command.op == "sql":
                session = self.db.core.sessions.get(
                    command.payload.get("session")
                )
                if session is None:
                    command.resolve(
                        _error("no open session; say hello first", "session")
                    )
                    continue
                try:
                    ticket = self.scheduler.submit(
                        session, command.payload.get("sql", "")
                    )
                except Exception as exc:  # parse / unsupported-statement
                    command.resolve(_error(str(exc), type(exc).__name__))
                    continue
                statements.append((command, ticket))
            elif command.op == "noop":
                command.resolve({"ok": True})
            else:
                command.resolve(_error(f"unknown op {command.op!r}", "protocol"))
        if statements:
            self.scheduler.run()
            for command, ticket in statements:
                command.resolve(self._ticket_reply(ticket))

    def _admit(self, command: _Command) -> None:
        payload = command.payload
        if self.token is not None and payload.get("token") != self.token:
            command.resolve(_error("bad or missing token", "auth"))
            return
        try:
            session = self.db.open_session(
                name=payload.get("name"),
                ram_bytes=payload.get("ram"),
            )
        except AdmissionError:
            # Queued admission: parked until a session slot frees.
            self._waiting.append(command)
            return
        except SessionError as exc:
            command.resolve(_error(str(exc), "session"))
            return
        command.resolve(
            {
                "ok": True,
                "session": session.name,
                "ram": session.lease.capacity,
            }
        )

    def _close(self, command: _Command) -> None:
        session = self.db.core.sessions.get(command.payload.get("session"))
        if session is None:
            command.resolve({"ok": True, "closed": False})
            return
        leaked = session.lease.firm_ram_used
        self.db.close_session(session)
        command.resolve({"ok": True, "closed": True, "leaked_ram": leaked})

    def _drain_waiters(self) -> None:
        """Retry parked hellos in arrival order; :meth:`_admit` either
        resolves each one or re-parks it (into the fresh list, so order
        is preserved)."""
        parked, self._waiting = self._waiting, []
        for command in parked:
            self._admit(command)

    def _ticket_reply(self, ticket) -> dict:
        if ticket.error is not None:
            kind = (
                "fault"
                if isinstance(ticket.error, GhostDBFaultError)
                else type(ticket.error).__name__
            )
            return _error(str(ticket.error), kind)
        result = ticket.result
        reply = {
            "ok": True,
            "sim_seconds": result.metrics.elapsed_seconds,
            "steps": ticket.steps,
        }
        if hasattr(result, "rows"):
            reply["columns"] = list(result.columns)
            reply["rows"] = [
                [_json_value(value) for value in row] for row in result.rows
            ]
            reply["row_count"] = result.row_count
        else:  # DML
            reply["matched"] = result.matched
            reply["changed"] = result.changed
        return reply


def _json_value(value):
    return value if isinstance(value, (int, float, str, bool, type(None))) else str(value)


class _Handler(socketserver.StreamRequestHandler):
    """One connection: line-framed JSON in, line-framed JSON out."""

    def handle(self) -> None:
        server: GhostDBServer = self.server.ghostdb  # type: ignore[attr-defined]
        session_name: str | None = None
        try:
            for raw in self.rfile:
                try:
                    message = json.loads(raw)
                    if not isinstance(message, dict):
                        raise ValueError("message must be a JSON object")
                except ValueError as exc:
                    self._send(_error(f"bad frame: {exc}", "protocol"))
                    return
                op = message.get("op")
                if op == "hello":
                    reply = server.call("hello", message)
                    if reply.get("ok"):
                        session_name = reply["session"]
                    self._send(reply)
                elif op == "sql":
                    message["session"] = session_name
                    self._send(server.call("sql", message))
                elif op == "bye":
                    reply = server.call("bye", {"session": session_name})
                    session_name = None
                    self._send(reply)
                    return
                else:
                    self._send(_error(f"unknown op {op!r}", "protocol"))
        finally:
            if session_name is not None:
                # Client vanished without bye: release its lease.
                server.call("bye", {"session": session_name})

    def _send(self, reply: dict) -> None:
        self.wfile.write(json.dumps(reply).encode() + b"\n")
        self.wfile.flush()


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


def start_server(
    db: GhostDB,
    host: str = "127.0.0.1",
    port: int = 0,
    token: str | None = None,
) -> tuple[_TcpServer, GhostDBServer]:
    """Boot the pump and a threaded TCP listener; returns both (the
    listener's ``server_address`` carries the bound port)."""
    ghost = GhostDBServer(db, token=token)
    ghost.start()
    tcp = _TcpServer((host, port), _Handler)
    tcp.ghostdb = ghost  # type: ignore[attr-defined]
    threading.Thread(
        target=tcp.serve_forever, name="ghostdb-listener", daemon=True
    ).start()
    return tcp, ghost


def shutdown_server(tcp: _TcpServer, ghost: GhostDBServer) -> None:
    tcp.shutdown()
    tcp.server_close()
    ghost.stop()


class ServeClient:
    """Minimal blocking client for the wire protocol (tests, smoke)."""

    def __init__(self, host: str, port: int):
        self._sock = socket.create_connection((host, port))
        self._file = self._sock.makefile("rwb")

    def call(self, **message) -> dict:
        self._file.write(json.dumps(message).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def hello(self, name=None, ram=None, token=None) -> dict:
        message = {"op": "hello"}
        if name is not None:
            message["name"] = name
        if ram is not None:
            message["ram"] = ram
        if token is not None:
            message["token"] = token
        return self.call(**message)

    def sql(self, sql: str) -> dict:
        return self.call(op="sql", sql=sql)

    def bye(self) -> dict:
        try:
            return self.call(op="bye")
        finally:
            self.close()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()


# ----------------------------------------------------------------------
# CI smoke: boot, hammer with concurrent clients, leak-check, shut down
# ----------------------------------------------------------------------

def run_smoke(scale: int = 400, clients: int = 4) -> int:
    """Boot a server on an ephemeral port, run ``clients`` concurrent
    clients against it, and verify the whole multiplexing story:
    every client gets the correct rows, the spied USB capture stays
    CLEAN under the leak checker, no session leaks RAM, and shutdown
    is clean.  Returns a process exit code."""
    from repro.core.factory import build_session
    from repro.privacy.leakcheck import LeakChecker
    from repro.workload.queries import demo_query, query_type_selectivity

    db, data = build_session(scale=scale)
    statements = [demo_query(), query_type_selectivity("Antibiotic")]
    expected = [
        sorted(
            [_json_value(v) for v in row] for row in db.query(sql).rows
        )
        for sql in statements
    ]
    db.reset_measurements()

    tcp, ghost = start_server(db, port=0)
    host, port = tcp.server_address
    failures: list[str] = []

    def client(i: int) -> None:
        try:
            c = ServeClient(host, port)
            hello = c.hello(name=f"smoke-{i}")
            if not hello.get("ok"):
                failures.append(f"client {i}: hello failed: {hello}")
                return
            for sql, want in zip(statements, expected):
                reply = c.sql(sql)
                if not reply.get("ok"):
                    failures.append(f"client {i}: {reply}")
                    return
                got = sorted(reply["rows"])
                if got != want:
                    failures.append(
                        f"client {i}: wrong rows ({len(got)} vs {len(want)})"
                    )
            bye = c.bye()
            if not bye.get("ok") or bye.get("leaked_ram"):
                failures.append(f"client {i}: bad bye: {bye}")
        except Exception as exc:  # noqa: BLE001 - smoke must report, not die
            failures.append(f"client {i}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    shutdown_server(tcp, ghost)

    # Every lease must be back in the pool, nothing still reserved.
    if db.core.sessions:
        failures.append(f"sessions leaked: {sorted(db.core.sessions)}")
    if db.core.leased_bytes:
        failures.append(f"leased RAM leaked: {db.core.leased_bytes} B")

    # The spy saw the full interleaved traffic; it must still be CLEAN.
    report = LeakChecker(db.schema, data).check(db.usb_log)
    if not report.ok:
        failures.append(f"leak check: {report.summary()}")

    print(f"serve smoke: {clients} clients x {len(statements)} statements")
    print(f"  usb records captured: {len(db.usb_log)}")
    print(f"  leak check: {report.summary()}")
    if failures:
        for failure in failures:
            print(f"  FAIL: {failure}", file=sys.stderr)
        return 1
    print("  all clients correct, no RAM leaked, clean shutdown")
    return 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ghostdb serve",
        description="Serve one GhostDB device to many TCP clients.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--scale", type=int, default=2000,
        help="synthetic dataset size (prescriptions)",
    )
    parser.add_argument(
        "--profile", default="demo", help="hardware profile name"
    )
    parser.add_argument(
        "--max-sessions", type=int, default=8,
        help="most leased sessions open at once",
    )
    parser.add_argument(
        "--token", default=None,
        help="require this token in every hello (auth stub)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: ephemeral port, 4 concurrent clients, "
        "leak check, clean shutdown",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke()

    from repro.core.factory import build_session

    db, _data = build_session(
        scale=args.scale,
        profile=args.profile,
        max_sessions=args.max_sessions,
    )
    tcp, ghost = start_server(
        db, host=args.host, port=args.port, token=args.token
    )
    host, port = tcp.server_address
    print(f"ghostdb serving on {host}:{port} (ctrl-c to stop)")
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        shutdown_server(tcp, ghost)
    return 0


if __name__ == "__main__":
    sys.exit(main())
