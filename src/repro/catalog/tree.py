"""Tree-schema analysis.

The paper's indexing model assumes a *tree schema*: foreign keys form a
tree whose root is the fact table (Prescription in Figure 3).  We say a
table ``P`` is the **parent** of ``C`` when ``P`` has a foreign key to
``C`` -- so the root references its children, and "climbing" from a table
toward the root follows referencing tables (Doctor -> Visit ->
Prescription, the path a climbing index on Doctor.Country precomputes).

:class:`SchemaTree` validates the shape (single root; every non-root table
referenced by exactly one table; no cycles) and answers the structural
questions the index builders and the optimizer ask: parent/children,
path-to-root, subtree membership, and which Subtree Key Tables exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import Schema, SchemaError, TableDef


class TreeSchemaError(SchemaError):
    """The foreign keys do not form a tree."""


@dataclass
class SchemaTree:
    """The join tree derived from a validated :class:`Schema`."""

    schema: Schema
    root: str = field(init=False)
    #: child table -> (parent table, parent's FK column name)
    _parent: dict[str, tuple[str, str]] = field(init=False)
    #: parent table -> list of (fk column name, child table)
    _children: dict[str, list[tuple[str, str]]] = field(init=False)

    def __post_init__(self):
        self.schema.validate()
        parent: dict[str, tuple[str, str]] = {}
        children: dict[str, list[tuple[str, str]]] = {
            t.name.lower(): [] for t in self.schema
        }
        for table in self.schema:
            for col in table.foreign_keys:
                child = col.references.table.lower()
                if child == table.name.lower():
                    raise TreeSchemaError(
                        f"{table.name} references itself; tree schemas "
                        f"cannot contain self-joins"
                    )
                if child in parent:
                    raise TreeSchemaError(
                        f"table {col.references.table!r} is referenced by "
                        f"both {parent[child][0]!r} and {table.name!r}; "
                        f"a tree schema allows one referencing table"
                    )
                parent[child] = (table.name.lower(), col.name)
                children[table.name.lower()].append((col.name, child))
        roots = [
            t.name.lower() for t in self.schema if t.name.lower() not in parent
        ]
        if len(self.schema) == 0:
            raise TreeSchemaError("empty schema")
        if len(roots) != 1:
            raise TreeSchemaError(
                f"a tree schema needs exactly one root table (not "
                f"referenced by any other); found {sorted(roots)!r}"
            )
        # Reachability check: every table must hang off the root.
        reachable = set()
        stack = [roots[0]]
        while stack:
            node = stack.pop()
            if node in reachable:
                raise TreeSchemaError(f"cycle through table {node!r}")
            reachable.add(node)
            stack.extend(child for _fk, child in children[node])
        missing = {t.name.lower() for t in self.schema} - reachable
        if missing:
            raise TreeSchemaError(
                f"tables {sorted(missing)!r} are not connected to the "
                f"root {roots[0]!r}"
            )
        self.root = roots[0]
        self._parent = parent
        self._children = children

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def table(self, name: str) -> TableDef:
        return self.schema.table(name)

    def parent_of(self, name: str) -> tuple[str, str] | None:
        """(parent table, parent's FK column) or None for the root."""
        return self._parent.get(name.lower())

    def children_of(self, name: str) -> list[tuple[str, str]]:
        """[(fk column on ``name``, child table), ...]."""
        return list(self._children[name.lower()])

    def path_to_root(self, name: str) -> list[str]:
        """Tables from ``name`` (inclusive) up to the root (inclusive)."""
        name = name.lower()
        if name not in self._children:
            raise SchemaError(f"unknown table {name!r}")
        path = [name]
        while path[-1] in self._parent:
            path.append(self._parent[path[-1]][0])
        return path

    def ancestors_of(self, name: str) -> list[str]:
        """Tables strictly above ``name`` on the way to the root."""
        return self.path_to_root(name)[1:]

    def subtree_of(self, name: str) -> list[str]:
        """``name`` plus every table it (transitively) references.

        The order is a pre-order walk, so the subtree root comes first --
        the column order of its Subtree Key Table.
        """
        result = []
        stack = [name.lower()]
        while stack:
            node = stack.pop(0)
            result.append(node)
            stack = [child for _fk, child in self._children[node]] + stack
        return result

    def skt_roots(self) -> list[str]:
        """Tables that get a Subtree Key Table: every internal node."""
        return [
            name for name, kids in self._children.items() if kids
        ]

    def is_ancestor(self, ancestor: str, descendant: str) -> bool:
        """True when ``ancestor`` lies on ``descendant``'s path to root.

        A table counts as its own ancestor, matching the climbing index's
        level set (T itself plus each table above it).
        """
        return ancestor.lower() in self.path_to_root(descendant)

    def query_root(self, tables: list[str]) -> str:
        """The member of ``tables`` that is an ancestor of all the others.

        SPJ queries in GhostDB address a connected subtree; its top table
        anchors the plan (its IDs are what all predicates convert into).
        """
        candidates = [t.lower() for t in tables]
        for cand in candidates:
            if all(self.is_ancestor(cand, other) for other in candidates):
                return cand
        raise SchemaError(
            f"tables {sorted(candidates)!r} have no common subtree root "
            f"among themselves; GhostDB queries must cover a connected "
            f"subtree of the schema tree"
        )

    def steps_between(self, ancestor: str, descendant: str) -> int:
        """Number of edges from ``descendant`` up to ``ancestor``."""
        path = self.path_to_root(descendant)
        try:
            return path.index(ancestor.lower())
        except ValueError:
            raise SchemaError(
                f"{ancestor!r} is not an ancestor of {descendant!r}"
            ) from None
