"""Tables, columns and the HIDDEN attribute.

The security administrator declares sensitivity per column in ordinary
``CREATE TABLE`` statements extended with the ``HIDDEN`` keyword (paper,
Section 2).  The placement rules that follow are:

* **hidden columns** exist only on the smart USB device;
* **visible columns** exist only on the public side (PC / server);
* **primary keys** are replicated on the device regardless of visibility,
  "to allow for queries combining visible and hidden data".

A primary key declared HIDDEN is additionally withheld from the public
side entirely (then its table's visible columns cannot be linked publicly,
which is a legitimate administrator choice; the demo schema keeps PKs
visible and hides foreign keys instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.record import RecordCodec
from repro.storage.types import DataType, IntegerType


class SchemaError(ValueError):
    """An invalid schema declaration."""


@dataclass(frozen=True)
class ForeignKey:
    """A REFERENCES clause: this column points at ``table``(``column``)."""

    table: str
    column: str


@dataclass(frozen=True)
class ColumnDef:
    """One column of a table."""

    name: str
    dtype: DataType
    hidden: bool = False
    primary_key: bool = False
    references: ForeignKey | None = None

    @property
    def on_device(self) -> bool:
        """Stored on the smart USB device?

        Hidden columns, every primary key (the paper replicates all PKs on
        the device) and every foreign key: FKs are the key material the
        Subtree Key Tables are built from, so the device needs them even
        when the administrator left them visible.  Replicating a visible
        FK reveals nothing (its authoritative copy is public anyway).
        """
        return self.hidden or self.primary_key or self.references is not None

    @property
    def on_public(self) -> bool:
        """Stored on the public side?  Everything not hidden."""
        return not self.hidden


@dataclass
class TableDef:
    """A table: ordered columns, exactly one primary key."""

    name: str
    columns: list[ColumnDef]

    def __post_init__(self):
        names = [c.name for c in self.columns]
        if len(set(n.lower() for n in names)) != len(names):
            raise SchemaError(f"{self.name}: duplicate column names")
        pks = [c for c in self.columns if c.primary_key]
        if len(pks) != 1:
            raise SchemaError(
                f"{self.name}: exactly one PRIMARY KEY column required, "
                f"found {len(pks)}"
            )
        if not isinstance(pks[0].dtype, IntegerType):
            raise SchemaError(
                f"{self.name}: primary keys must be INTEGER "
                f"(IDs travel in packed 32-bit lists)"
            )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def column(self, name: str) -> ColumnDef:
        for col in self.columns:
            if col.name.lower() == name.lower():
                return col
        raise SchemaError(f"{self.name} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name.lower() == name.lower() for c in self.columns)

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name.lower() == name.lower():
                return i
        raise SchemaError(f"{self.name} has no column {name!r}")

    @property
    def pk(self) -> ColumnDef:
        return next(c for c in self.columns if c.primary_key)

    @property
    def foreign_keys(self) -> list[ColumnDef]:
        return [c for c in self.columns if c.references is not None]

    @property
    def hidden_columns(self) -> list[ColumnDef]:
        return [c for c in self.columns if c.hidden]

    @property
    def visible_columns(self) -> list[ColumnDef]:
        return [c for c in self.columns if not c.hidden]

    # ------------------------------------------------------------------
    # Physical layouts
    # ------------------------------------------------------------------

    def device_columns(self) -> list[ColumnDef]:
        """Columns stored on the device: the PK first, then hidden ones.

        Memoized: record decoding asks for the layout once per field,
        and the column list is fixed after CREATE TABLE.
        """
        cached = self.__dict__.get("_device_columns")
        if cached is None:
            rest = [
                c for c in self.columns if c.on_device and not c.primary_key
            ]
            cached = [self.pk] + rest
            self._device_columns = cached
        return cached

    def public_columns(self) -> list[ColumnDef]:
        """Columns stored publicly: the PK (if visible) then visible ones."""
        return [c for c in self.columns if c.on_public]

    def device_codec(self) -> RecordCodec:
        return RecordCodec([c.dtype for c in self.device_columns()])

    def device_column_index(self, name: str) -> int:
        index = self.__dict__.get("_device_index")
        if index is None:
            index = {
                c.name.lower(): i for i, c in enumerate(self.device_columns())
            }
            self._device_index = index
        try:
            return index[name.lower()]
        except KeyError:
            raise SchemaError(
                f"{self.name}: {name!r} is not device-resident"
            ) from None


@dataclass
class Schema:
    """All table definitions, with cross-table FK validation."""

    tables: dict[str, TableDef] = field(default_factory=dict)

    def add(self, table: TableDef) -> None:
        key = table.name.lower()
        if key in self.tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self.tables[key] = table

    def table(self, name: str) -> TableDef:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def validate(self) -> None:
        """Check every foreign key references an existing primary key."""
        for table in self.tables.values():
            for col in table.foreign_keys:
                fk = col.references
                if not self.has_table(fk.table):
                    raise SchemaError(
                        f"{table.name}.{col.name} references unknown table "
                        f"{fk.table!r}"
                    )
                target = self.table(fk.table)
                target_col = target.column(fk.column)
                if not target_col.primary_key:
                    raise SchemaError(
                        f"{table.name}.{col.name} must reference a primary "
                        f"key; {fk.table}.{fk.column} is not one"
                    )
                if type(col.dtype) is not type(target_col.dtype):
                    raise SchemaError(
                        f"{table.name}.{col.name} type does not match "
                        f"{fk.table}.{fk.column}"
                    )

    def __iter__(self):
        return iter(self.tables.values())

    def __len__(self) -> int:
        return len(self.tables)
