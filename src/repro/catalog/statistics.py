"""Per-column statistics for the cost model.

The optimizer's Pre-vs-Post-filtering decision hinges on *selectivity*
estimates (paper, Section 4: "If, however, the selectivity of a visible
selection is low, traversing the climbing indexes may be a poor choice").
We collect the classical minimum: row counts, per-column distinct counts,
min/max, and either an exact value-frequency map (low-cardinality columns)
or an equi-width histogram (everything else).

Statistics describe *visible* columns too: the PC computes them at load
time and shares them with the optimizer.  That reveals nothing new -- the
spy already sees all visible data.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.storage.types import CharType, DataType, date_to_days

#: Columns with at most this many distinct values keep exact frequencies.
EXACT_THRESHOLD = 64

#: Number of buckets in equi-width histograms.
HISTOGRAM_BUCKETS = 32


def _as_number(value) -> float:
    """Map a value to the number line for histogram bucketing."""
    if isinstance(value, datetime.date):
        return float(date_to_days(value))
    if isinstance(value, str):
        # Strings only ever get exact frequency maps; this fallback keys
        # the histogram on a coarse prefix ordering just in case.
        raw = value.encode("utf-8")[:8].ljust(8, b"\x00")
        return float(int.from_bytes(raw, "big"))
    return float(value)


@dataclass
class ColumnStats:
    """Summary of one column's value distribution."""

    column: str
    row_count: int = 0
    n_distinct: int = 0
    min_value: object = None
    max_value: object = None
    #: value -> count, only for low-cardinality columns.
    frequencies: dict | None = None
    #: equi-width bucket counts over [min, max], otherwise.
    histogram: list[int] | None = None

    def selectivity_eq(self, value) -> float:
        """Estimated fraction of rows where column = value."""
        if self.row_count == 0:
            return 0.0
        if self.frequencies is not None:
            return self.frequencies.get(value, 0) / self.row_count
        if self.n_distinct:
            return 1.0 / self.n_distinct
        return 0.0

    def selectivity_range(self, low, high, include_low=True, include_high=True) -> float:
        """Estimated fraction of rows with low <= column <= high.

        ``low``/``high`` may be ``None`` for open ends.  Inclusivity only
        matters for the exact-frequency path.
        """
        if self.row_count == 0:
            return 0.0
        if self.frequencies is not None:
            total = 0
            for value, count in self.frequencies.items():
                above_low = (
                    low is None
                    or value > low
                    or (include_low and value == low)
                )
                below_high = (
                    high is None
                    or value < high
                    or (include_high and value == high)
                )
                if above_low and below_high:
                    total += count
            return total / self.row_count
        if self.histogram is None or self.min_value is None:
            return 1.0
        lo_n = _as_number(self.min_value)
        hi_n = _as_number(self.max_value)
        if hi_n <= lo_n:
            within = (low is None or _as_number(low) <= lo_n) and (
                high is None or _as_number(high) >= hi_n
            )
            return 1.0 if within else 0.0
        span = (hi_n - lo_n) / len(self.histogram)
        total = 0.0
        for i, count in enumerate(self.histogram):
            b_lo = lo_n + i * span
            b_hi = b_lo + span
            q_lo = _as_number(low) if low is not None else b_lo
            q_hi = _as_number(high) if high is not None else b_hi
            overlap = max(0.0, min(b_hi, q_hi) - max(b_lo, q_lo))
            if overlap > 0:
                total += count * (overlap / span)
        return min(1.0, total / self.row_count)


@dataclass
class TableStats:
    """Row count plus per-column stats for one table."""

    table: str
    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats:
        try:
            return self.columns[name.lower()]
        except KeyError:
            raise KeyError(
                f"no statistics for {self.table}.{name}"
            ) from None


class StatisticsCollector:
    """Single-pass stats builder: feed rows, then :meth:`finish`."""

    def __init__(self, table: str, column_names: list[str], dtypes: list[DataType]):
        self.table = table
        self.names = [n.lower() for n in column_names]
        self.dtypes = dtypes
        self._counts: list[dict] = [{} for _ in column_names]
        self._minmax: list[tuple | None] = [None] * len(column_names)
        self._row_count = 0
        self._overflowed = [False] * len(column_names)

    def add(self, row) -> None:
        self._row_count += 1
        for i, value in enumerate(row):
            mm = self._minmax[i]
            if mm is None:
                self._minmax[i] = (value, value)
            else:
                lo, hi = mm
                if value < lo:
                    lo = value
                if value > hi:
                    hi = value
                self._minmax[i] = (lo, hi)
            counts = self._counts[i]
            counts[value] = counts.get(value, 0) + 1
            if (
                not self._overflowed[i]
                and not isinstance(self.dtypes[i], CharType)
                and len(counts) > max(EXACT_THRESHOLD, 4096)
            ):
                # Keep big numeric maps from eating host memory: sample
                # down to min/max + a reservoir for the histogram.
                self._overflowed[i] = True

    def finish(self) -> TableStats:
        stats = TableStats(table=self.table, row_count=self._row_count)
        for i, name in enumerate(self.names):
            counts = self._counts[i]
            mm = self._minmax[i]
            col = ColumnStats(
                column=name,
                row_count=self._row_count,
                n_distinct=len(counts),
                min_value=mm[0] if mm else None,
                max_value=mm[1] if mm else None,
            )
            if len(counts) <= EXACT_THRESHOLD:
                col.frequencies = dict(counts)
            else:
                col.histogram = self._build_histogram(counts, mm)
            stats.columns[name] = col
        return stats

    @staticmethod
    def _build_histogram(counts: dict, mm: tuple) -> list[int]:
        lo = _as_number(mm[0])
        hi = _as_number(mm[1])
        buckets = [0] * HISTOGRAM_BUCKETS
        if hi <= lo:
            buckets[0] = sum(counts.values())
            return buckets
        span = (hi - lo) / HISTOGRAM_BUCKETS
        for value, count in counts.items():
            idx = int((_as_number(value) - lo) / span)
            idx = min(idx, HISTOGRAM_BUCKETS - 1)
            buckets[idx] += count
        return buckets
