"""Schema catalog: tables, HIDDEN columns, tree-schema analysis, stats.

GhostDB changes the schema language in exactly one way -- the ``HIDDEN``
keyword on column definitions -- and derives everything else from the
foreign-key structure: the join tree, where each column lives (device vs
public), which Subtree Key Tables exist, and which climbing indexes make
sense.  This package holds that derived knowledge plus the per-column
statistics the optimizer's cost model consumes.
"""

from repro.catalog.schema import (
    ColumnDef,
    ForeignKey,
    Schema,
    SchemaError,
    TableDef,
)
from repro.catalog.tree import SchemaTree, TreeSchemaError
from repro.catalog.statistics import ColumnStats, StatisticsCollector, TableStats

__all__ = [
    "ColumnDef",
    "ColumnStats",
    "ForeignKey",
    "Schema",
    "SchemaError",
    "SchemaTree",
    "StatisticsCollector",
    "TableDef",
    "TableStats",
    "TreeSchemaError",
]
