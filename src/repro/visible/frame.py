"""CRC32 framing for USB messages.

The bus can corrupt, truncate or drop messages (see
:mod:`repro.faults`), so every protocol message is wrapped in a small
frame before it crosses the trust boundary:

``magic (2 B) | payload length (4 B, big-endian) | crc32 (4 B) | payload``

The receiver verifies magic, length and CRC; any mismatch raises
:class:`FrameError` and the link layer retransmits.  The frame carries
no secrets -- it is pure integrity metadata over a payload the spy could
already see, so framing changes nothing about the privacy argument
(the leak checker unwraps frames before its structural checks).
"""

from __future__ import annotations

import struct
import zlib

FRAME_MAGIC = b"GF"
_HEADER = struct.Struct(">2sII")

#: Bytes of framing overhead per message.
FRAME_OVERHEAD = _HEADER.size

#: Bytes per packed row ID in ``ids`` / ``fetch_ids`` payloads (big-endian
#: 32-bit, see :data:`repro.visible.link._PACK`).  Observers -- the spy,
#: the leak meter -- divide payload sizes by this to recover ID-list
#: cardinalities, so the constant lives here with the rest of the wire
#: format instead of being a magic ``// 4`` in every observer.
ID_WIDTH_BYTES = 4


class FrameError(Exception):
    """A frame failed its magic, length or CRC check (corruption)."""


def frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length- and CRC-checked frame."""
    return _HEADER.pack(FRAME_MAGIC, len(payload), zlib.crc32(payload)) + payload


def unframe(data: bytes) -> bytes:
    """Verify and strip the frame; raises :class:`FrameError` on any
    corruption or truncation."""
    if len(data) < _HEADER.size:
        raise FrameError(f"frame of {len(data)} B is shorter than a header")
    magic, length, crc = _HEADER.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise FrameError("bad frame magic")
    payload = data[_HEADER.size :]
    if len(payload) != length:
        raise FrameError(
            f"frame announces {length} B payload, carries {len(payload)} B"
        )
    if zlib.crc32(payload) != crc:
        raise FrameError("frame CRC mismatch")
    return payload


def payload_of(data: bytes) -> bytes:
    """Best-effort payload extraction for observers (spy, leak checker).

    Strips the frame header when one is present -- without verifying the
    CRC, since observers also look at deliberately mangled traffic --
    and returns unframed data untouched.
    """
    if len(data) >= _HEADER.size and data[: len(FRAME_MAGIC)] == FRAME_MAGIC:
        return data[_HEADER.size :]
    return data
