"""The visible site: the PC and/or public server holding visible data.

Stores each table's public columns keyed by primary key, evaluates
visible selections (free of device cost -- the paper delegates "as much
work as possible to the PC and the server"), serves value fetches for
projections, and computes visible-column statistics that it shares with
the device's optimizer at plug-in time.

Nothing here is trusted: the spy is assumed to read all of it anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import Schema, SchemaError, TableDef
from repro.catalog.statistics import StatisticsCollector, TableStats
from repro.sql.binder import Predicate


@dataclass
class _VisibleTable:
    definition: TableDef
    #: public column names, in storage order (PK included when visible).
    columns: list[str]
    #: pk -> tuple of public column values.
    rows: dict[int, tuple] = field(default_factory=dict)
    #: pks in sorted order (rebuilt lazily after loads).
    _sorted_pks: list[int] | None = None

    def sorted_pks(self) -> list[int]:
        if self._sorted_pks is None:
            self._sorted_pks = sorted(self.rows)
        return self._sorted_pks


class VisibleSite:
    """In-memory store of all visible columns, keyed by primary key."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._tables: dict[str, _VisibleTable] = {}
        self._stats: dict[str, TableStats] = {}
        for table in schema:
            columns = [c.name.lower() for c in table.public_columns()]
            self._tables[table.name.lower()] = _VisibleTable(
                definition=table, columns=columns
            )

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self, table_name: str, full_rows) -> None:
        """Load full rows (all columns); keeps only the visible ones.

        ``full_rows`` are tuples in schema column order.  The hidden
        columns are dropped here -- in a real deployment they would never
        have reached this machine; the loader splits before shipping.
        """
        vtable = self._table(table_name)
        tdef = vtable.definition
        pk_index = next(
            i for i, c in enumerate(tdef.columns) if c.primary_key
        )
        keep = [
            i for i, c in enumerate(tdef.columns) if c.on_public
        ]
        collector = StatisticsCollector(
            table=tdef.name.lower(),
            column_names=[tdef.columns[i].name for i in keep],
            dtypes=[tdef.columns[i].dtype for i in keep],
        )
        for row in full_rows:
            if len(row) != len(tdef.columns):
                raise SchemaError(
                    f"{tdef.name}: row has {len(row)} values, expected "
                    f"{len(tdef.columns)}"
                )
            pk = row[pk_index]
            public = tuple(row[i] for i in keep)
            vtable.rows[pk] = public
            collector.add(public)
        vtable._sorted_pks = None
        self._stats[tdef.name.lower()] = collector.finish()

    def append(self, table_name: str, full_rows) -> None:
        """Add rows after the initial load (re-synchronisation session).

        The visible side is an ordinary store: appending is cheap, and
        statistics are recomputed from the stored public rows.
        """
        vtable = self._table(table_name)
        tdef = vtable.definition
        pk_index = next(
            i for i, c in enumerate(tdef.columns) if c.primary_key
        )
        keep = [i for i, c in enumerate(tdef.columns) if c.on_public]
        for row in full_rows:
            if len(row) != len(tdef.columns):
                raise SchemaError(
                    f"{tdef.name}: row has {len(row)} values, expected "
                    f"{len(tdef.columns)}"
                )
            pk = row[pk_index]
            if pk in vtable.rows:
                raise SchemaError(
                    f"{tdef.name}: key {pk} already exists"
                )
            vtable.rows[pk] = tuple(row[i] for i in keep)
        vtable._sorted_pks = None
        self._recompute_stats(vtable)

    def update_rows(self, table_name: str, full_rows: dict[int, tuple]) -> None:
        """Replace the public part of existing rows (DML re-sync).

        ``full_rows`` maps pk -> full row tuple in schema column order;
        hidden values are dropped here, like :meth:`load`.  Keys keep
        their position in the sort order, so ``_sorted_pks`` survives.
        """
        vtable = self._table(table_name)
        tdef = vtable.definition
        keep = [i for i, c in enumerate(tdef.columns) if c.on_public]
        for pk, row in full_rows.items():
            if pk not in vtable.rows:
                raise SchemaError(f"{tdef.name}: key {pk} does not exist")
            vtable.rows[pk] = tuple(row[i] for i in keep)
        self._recompute_stats(vtable)

    def delete_rows(self, table_name: str, pks) -> None:
        """Remove rows by primary key (DML re-sync)."""
        vtable = self._table(table_name)
        tdef = vtable.definition
        for pk in pks:
            if pk not in vtable.rows:
                raise SchemaError(f"{tdef.name}: key {pk} does not exist")
            del vtable.rows[pk]
        vtable._sorted_pks = None
        self._recompute_stats(vtable)

    def _recompute_stats(self, vtable: _VisibleTable) -> None:
        tdef = vtable.definition
        keep = [i for i, c in enumerate(tdef.columns) if c.on_public]
        collector = StatisticsCollector(
            table=tdef.name.lower(),
            column_names=[tdef.columns[i].name for i in keep],
            dtypes=[tdef.columns[i].dtype for i in keep],
        )
        for public in vtable.rows.values():
            collector.add(public)
        self._stats[tdef.name.lower()] = collector.finish()

    # ------------------------------------------------------------------
    # Serving (called by the link's host endpoint)
    # ------------------------------------------------------------------

    def select_ids(self, table_name: str, predicate: Predicate) -> list[int]:
        """All PKs whose row satisfies a visible predicate, sorted."""
        vtable = self._table(table_name)
        col_idx = self._public_index(vtable, predicate.column)
        return [
            pk
            for pk in vtable.sorted_pks()
            if predicate.matches(vtable.rows[pk][col_idx])
        ]

    def count_ids(self, table_name: str, predicate: Predicate) -> int:
        return len(self.select_ids(table_name, predicate))

    def fetch_values(
        self,
        table_name: str,
        pks: list[int],
        columns: list[str],
        recheck: list[Predicate] | None = None,
    ) -> dict[int, tuple]:
        """Values of ``columns`` for each pk that exists and passes
        ``recheck`` (the visible predicates re-verified server-side; this
        is what silently removes Bloom-filter false positives)."""
        vtable = self._table(table_name)
        col_indexes = [self._public_index(vtable, c) for c in columns]
        recheck = recheck or []
        recheck_idx = [
            (self._public_index(vtable, p.column), p) for p in recheck
        ]
        result: dict[int, tuple] = {}
        for pk in pks:
            row = vtable.rows.get(pk)
            if row is None:
                continue
            if any(not p.matches(row[i]) for i, p in recheck_idx):
                continue
            result[pk] = tuple(row[i] for i in col_indexes)
        return result

    def statistics(self, table_name: str) -> TableStats:
        """Visible-column statistics (shared with the device optimizer)."""
        try:
            return self._stats[table_name.lower()]
        except KeyError:
            raise SchemaError(
                f"no visible data loaded for table {table_name!r}"
            ) from None

    def row_count(self, table_name: str) -> int:
        return len(self._table(table_name).rows)

    # ------------------------------------------------------------------

    def _table(self, name: str) -> _VisibleTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    @staticmethod
    def _public_index(vtable: _VisibleTable, column: str) -> int:
        try:
            return vtable.columns.index(column.lower())
        except ValueError:
            raise SchemaError(
                f"{vtable.definition.name}.{column} is not visible; the "
                f"public side cannot touch it"
            ) from None
