"""The untrusted, visible side: PC / public server and the link protocol.

Visible columns and primary keys live here in plain sight.  The visible
site is computationally powerful (selections over it are free in device
time) but completely observable -- everything it exchanges with the
device crosses the USB channel and lands in the spy log.

The protocol (:mod:`repro.visible.link`) is deliberately one-directional
about *data*: the device can request visible ID lists and visible values,
but there exists no verb for shipping hidden data out.
"""

from repro.visible.site import VisibleSite
from repro.visible.link import DeviceLink, ProtocolError

__all__ = ["DeviceLink", "ProtocolError", "VisibleSite"]
