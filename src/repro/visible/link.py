"""The client protocol between the device and the visible site.

Every byte of this protocol crosses the USB trust boundary, so its design
*is* the privacy argument:

* device -> host messages carry only **requests**: a visible predicate to
  evaluate, or a list of IDs whose visible attributes the projection
  needs.  Both are information the paper accepts revealing ("the queries
  he poses and the visible data he accesses").
* host -> device messages carry visible data only: sorted ID lists
  (packed 32-bit, in batches) and projected visible values (JSON).
* there is **no verb** for moving hidden data or intermediate results out
  of the device.  The leak checker additionally scans all captured
  payloads, but the protocol's shape is the first line of defence.

Requests are JSON for observability -- a spy (and our tests) can read
them, which is the point.
"""

from __future__ import annotations

import datetime
import json
import struct

from repro.faults.errors import UsbTransferError
from repro.hardware.device import SmartUsbDevice
from repro.hardware.usb import Direction, UsbDroppedError
from repro.sql.binder import EQ, IN, NEQ, RANGE, Predicate
from repro.visible.frame import ID_WIDTH_BYTES, FrameError, frame, unframe
from repro.visible.site import VisibleSite

_PACK = struct.Struct(">I")
assert _PACK.size == ID_WIDTH_BYTES, "wire ID width drifted from frame.py"

#: IDs per host->device batch message (1 KiB of payload at 4 B/ID).
DEFAULT_ID_BATCH = 256

#: Rows per fetch_values batch.
DEFAULT_FETCH_BATCH = 128

#: How many times a corrupted or dropped frame is retransmitted before
#: the transfer is abandoned with :class:`UsbTransferError`.
MAX_RETRIES = 5

#: Initial retransmission backoff (simulated seconds); doubles per
#: attempt, charged to the "usb" clock category.
RETRY_BACKOFF_S = 0.002


class ProtocolError(Exception):
    """Malformed or corrupted link traffic."""


def encode_value(value):
    """JSON-encode a SQL value (dates get a marker object)."""
    if isinstance(value, datetime.date):
        return {"__date__": value.isoformat()}
    return value


def decode_value(value):
    if isinstance(value, dict) and "__date__" in value:
        return datetime.date.fromisoformat(value["__date__"])
    return value


def predicate_to_wire(predicate: Predicate) -> dict:
    return {
        "table": predicate.table,
        "column": predicate.column,
        "kind": predicate.kind,
        "value": encode_value(predicate.value),
        "low": encode_value(predicate.low),
        "low_inclusive": predicate.low_inclusive,
        "high": encode_value(predicate.high),
        "high_inclusive": predicate.high_inclusive,
        "values": [encode_value(v) for v in predicate.values],
    }


def predicate_matches_wire(wire: dict, value) -> bool:
    """Evaluate a wire-format predicate (host side, no ColumnDef needed)."""
    kind = wire["kind"]
    if kind == EQ:
        return value == decode_value(wire["value"])
    if kind == NEQ:
        return value != decode_value(wire["value"])
    if kind == IN:
        return value in {decode_value(v) for v in wire.get("values", [])}
    if kind == RANGE:
        low = decode_value(wire["low"])
        high = decode_value(wire["high"])
        if low is not None:
            if wire["low_inclusive"]:
                if value < low:
                    return False
            elif value <= low:
                return False
        if high is not None:
            if wire["high_inclusive"]:
                if value > high:
                    return False
            elif value >= high:
                return False
        return True
    raise ProtocolError(f"unknown predicate kind {kind!r}")


class DeviceLink:
    """Device-side protocol client, talking to a :class:`VisibleSite`.

    In the demo platform these are separate machines; in the simulation
    the host endpoint is invoked synchronously after each USB transfer,
    which preserves exactly the observable traffic.
    """

    def __init__(
        self,
        device: SmartUsbDevice,
        site: VisibleSite,
        id_batch: int = DEFAULT_ID_BATCH,
        fetch_batch: int = DEFAULT_FETCH_BATCH,
    ):
        self.device = device
        self.site = site
        self.id_batch = id_batch
        self.fetch_batch = fetch_batch

    # ------------------------------------------------------------------
    # Reliable transfer
    # ------------------------------------------------------------------

    def _send(
        self,
        direction: Direction,
        kind: str,
        payload: bytes,
        description: str = "",
    ) -> bytes:
        """Move ``payload`` across the bus inside a CRC32 frame.

        A frame that arrives corrupted or truncated, or never arrives at
        all, is retransmitted up to :data:`MAX_RETRIES` times with
        exponential backoff charged to the simulated clock.  Every
        attempt -- including the mangled ones -- lands in the USB
        capture log, so the spy sees retransmissions too.  Exhausting
        the budget raises :class:`~repro.faults.UsbTransferError`; an
        unplug mid-transfer propagates as ``DeviceUnpluggedError``.
        """
        framed = frame(payload)
        attempt = 0
        while True:
            try:
                delivered = self.device.usb.transfer(
                    direction, kind, framed, description=description
                )
                return unframe(delivered)
            except (FrameError, UsbDroppedError) as exc:
                reason = (
                    "dropped" if isinstance(exc, UsbDroppedError) else "corrupt"
                )
                attempt += 1
                if self.device.usb.metrics is not None:
                    self.device.usb.metrics.counter(
                        "ghostdb_usb_retries_total"
                    ).inc(reason=reason)
                if self.device.flight is not None:
                    self.device.flight.record(
                        "usb_retry", reason=reason, attempt=attempt
                    )
                if attempt > MAX_RETRIES:
                    if self.device.flight is not None:
                        self.device.flight.record(
                            "usb_exhausted", reason=reason, attempt=attempt
                        )
                    raise UsbTransferError(
                        f"{kind} transfer failed after {MAX_RETRIES} "
                        f"retries ({reason})"
                    ) from exc
                self.device.clock.advance(
                    RETRY_BACKOFF_S * (2 ** (attempt - 1)), "usb"
                )

    def announce(self, sql: str) -> None:
        """Ship the user's query text to the device, as the terminal
        would.  An accepted revelation ("the queries he poses")."""
        self._send(
            Direction.TO_DEVICE, "query", sql.strip().encode("utf-8"),
            description="query text from the terminal",
        )

    # ------------------------------------------------------------------
    # Visible selection -> ID stream
    # ------------------------------------------------------------------

    def select_ids(self, table: str, predicate: Predicate):
        """Yield the sorted PKs satisfying a visible predicate, one at
        a time (a flattening of :meth:`select_id_batches`)."""
        for batch in self.select_id_batches(table, predicate):
            yield from batch

    def select_id_batches(self, table: str, predicate: Predicate):
        """Yield the sorted PKs satisfying a visible predicate, one
        list per host->device batch message.

        The request crosses to the host; the host evaluates the predicate
        on its copy of the data (free of device cost) and streams the IDs
        back in packed batches.  The device holds one batch in RAM.  The
        batch boundaries *are* the USB message boundaries -- consuming
        per message or per ID produces identical observable traffic,
        because each message is only requested when its first ID is
        demanded either way.
        """
        request = json.dumps(
            {"op": "select_ids", "predicate": predicate_to_wire(predicate)}
        ).encode("utf-8")
        self._send(
            Direction.TO_HOST, "request", request,
            description=f"select_ids {table}.{predicate.column}",
        )
        ids = self.site.select_ids(table, predicate)
        with self.device.ram.allocate(
            self.id_batch * _PACK.size, f"usb-rx:{table}"
        ):
            for start in range(0, len(ids), self.id_batch):
                batch = ids[start : start + self.id_batch]
                payload = b"".join(_PACK.pack(i) for i in batch)
                delivered = self._send(
                    Direction.TO_DEVICE, "ids", payload,
                    description=f"{len(batch)} ids of {table}",
                )
                if len(delivered) % _PACK.size:
                    raise ProtocolError("truncated ID batch")
                yield [
                    _PACK.unpack_from(delivered, off)[0]
                    for off in range(0, len(delivered), _PACK.size)
                ]
        end = json.dumps({"op": "ids_end", "count": len(ids)}).encode("utf-8")
        self._send(
            Direction.TO_DEVICE, "ids_end", end,
            description=f"end of ids for {table}",
        )

    def count_ids(self, table: str, predicate: Predicate) -> int:
        """Ask the host for an exact visible-selection cardinality."""
        request = json.dumps(
            {"op": "count_ids", "predicate": predicate_to_wire(predicate)}
        ).encode("utf-8")
        self._send(
            Direction.TO_HOST, "request", request,
            description=f"count_ids {table}.{predicate.column}",
        )
        count = self.site.count_ids(table, predicate)
        reply = json.dumps({"op": "count", "count": count}).encode("utf-8")
        self._send(
            Direction.TO_DEVICE, "count", reply,
            description=f"count for {table}",
        )
        return count

    # ------------------------------------------------------------------
    # Projection -> visible value fetch
    # ------------------------------------------------------------------

    def fetch_values(
        self,
        table: str,
        pks: list[int],
        columns: list[str],
        recheck: list[Predicate] | None = None,
    ) -> dict[int, tuple]:
        """Fetch visible values for ``pks``, batch by batch.

        The host re-checks ``recheck`` predicates while serving, so IDs
        that were Bloom-filter false positives simply come back absent.
        Requested IDs are visible on the wire -- the accepted revelation.
        """
        recheck = recheck or []
        result: dict[int, tuple] = {}
        for start in range(0, len(pks), self.fetch_batch):
            batch = pks[start : start + self.fetch_batch]
            header = json.dumps(
                {
                    "op": "fetch_values",
                    "table": table,
                    "columns": columns,
                    "recheck": [predicate_to_wire(p) for p in recheck],
                    "count": len(batch),
                }
            ).encode("utf-8")
            self._send(
                Direction.TO_HOST, "request", header,
                description=f"fetch {len(batch)} rows of {table}",
            )
            id_payload = b"".join(_PACK.pack(i) for i in batch)
            self._send(
                Direction.TO_HOST, "fetch_ids", id_payload,
                description=f"ids to fetch from {table}",
            )
            rows = self.site.fetch_values(table, batch, columns, recheck)
            reply = json.dumps(
                {
                    str(pk): [encode_value(v) for v in values]
                    for pk, values in rows.items()
                }
            ).encode("utf-8")
            with self.device.ram.allocate(
                max(64, len(reply)), f"usb-rx-values:{table}"
            ):
                delivered = self._send(
                    Direction.TO_DEVICE, "values", reply,
                    description=f"{len(rows)} rows of {table}",
                )
                try:
                    decoded = json.loads(delivered.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ProtocolError(f"corrupted values reply: {exc}")
            for pk_str, values in decoded.items():
                result[int(pk_str)] = tuple(decode_value(v) for v in values)
        return result
