"""Synthetic workload: the demo's medical dataset and query families."""

from repro.workload.datagen import DatasetConfig, MedicalDataGenerator
from repro.workload.queries import (
    DEMO_SCHEMA_DDL,
    demo_query,
    query_date_selectivity,
    query_purpose_only,
    query_type_selectivity,
)

__all__ = [
    "DEMO_SCHEMA_DDL",
    "DatasetConfig",
    "MedicalDataGenerator",
    "demo_query",
    "query_date_selectivity",
    "query_purpose_only",
    "query_type_selectivity",
]
