"""The demo schema DDL and parametrised query families.

``DEMO_SCHEMA_DDL`` is the Figure 3 schema verbatim (superscript-H
columns carry the HIDDEN keyword); ``demo_query()`` is the Section 4
example query.  The parametrised variants sweep predicate selectivities
for the Pre-vs-Post crossover benchmarks.
"""

from __future__ import annotations

import datetime

#: Figure 3's schema.  Hidden columns: Pat.Name, Pat.BodyMassIndex,
#: Vis.Purpose, Vis.DocID, Vis.PatID, Pre.Quantity, Pre.WhenWritten,
#: Pre.MedID, Pre.VisID.
DEMO_SCHEMA_DDL = [
    """CREATE TABLE Doctor (
        DocID INTEGER PRIMARY KEY,
        Name CHAR(20),
        Speciality CHAR(20),
        Zip INTEGER,
        Country CHAR(20))""",
    """CREATE TABLE Patient (
        PatID INTEGER PRIMARY KEY,
        Name CHAR(20) HIDDEN,
        Age INTEGER,
        BodyMassIndex FLOAT HIDDEN,
        Country CHAR(20))""",
    """CREATE TABLE Medicine (
        MedID INTEGER PRIMARY KEY,
        Name CHAR(30),
        Effect CHAR(30),
        Type CHAR(20))""",
    """CREATE TABLE Visit (
        VisID INTEGER PRIMARY KEY,
        Date DATE,
        Purpose CHAR(100) HIDDEN,
        DocID REFERENCES Doctor(DocID) HIDDEN,
        PatID REFERENCES Patient(PatID) HIDDEN)""",
    """CREATE TABLE Prescription (
        PreID INTEGER PRIMARY KEY,
        Quantity INTEGER HIDDEN,
        Frequency CHAR(20),
        WhenWritten DATE HIDDEN,
        MedID REFERENCES Medicine(MedID) HIDDEN,
        VisID REFERENCES Visit(VisID) HIDDEN)""",
]


def demo_query(
    date_cutoff: datetime.date = datetime.date(2006, 11, 5),
    purpose: str = "Sclerosis",
    med_type: str = "Antibiotic",
) -> str:
    """The paper's Section 4 query, with its literals as parameters."""
    return f"""
        SELECT Med.Name, Pre.Quantity, Vis.Date
        FROM Medicine Med, Prescription Pre, Visit Vis
        WHERE Vis.Date > DATE '{date_cutoff.isoformat()}'
        AND Vis.Purpose = '{purpose}'
        AND Med.Type = '{med_type}'
        AND Med.MedID = Pre.MedID
        AND Vis.VisID = Pre.VisID
    """


def query_date_selectivity(date_cutoff: datetime.date) -> str:
    """Hidden purpose fixed, visible date predicate of varying
    selectivity: the D2 crossover sweep."""
    return f"""
        SELECT Pre.Quantity, Vis.Date
        FROM Prescription Pre, Visit Vis
        WHERE Vis.Date > DATE '{date_cutoff.isoformat()}'
        AND Vis.Purpose = 'Sclerosis'
        AND Vis.VisID = Pre.VisID
    """


def query_type_selectivity(med_type: str) -> str:
    """Visible medicine-type predicate only (no hidden selection)."""
    return f"""
        SELECT Med.Name, Pre.Quantity
        FROM Medicine Med, Prescription Pre
        WHERE Med.Type = '{med_type}'
        AND Med.MedID = Pre.MedID
    """


def query_purpose_only(purpose: str = "Sclerosis") -> str:
    """Hidden predicate only: pure climbing-index pre-filtering."""
    return f"""
        SELECT Pre.Quantity, Vis.Date
        FROM Prescription Pre, Visit Vis
        WHERE Vis.Purpose = '{purpose}'
        AND Vis.VisID = Pre.VisID
    """
