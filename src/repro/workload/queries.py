"""The demo schema DDL and parametrised query families.

``DEMO_SCHEMA_DDL`` is the Figure 3 schema verbatim (superscript-H
columns carry the HIDDEN keyword); ``demo_query()`` is the Section 4
example query.  The parametrised variants sweep predicate selectivities
for the Pre-vs-Post crossover benchmarks.
"""

from __future__ import annotations

import datetime

#: Figure 3's schema.  Hidden columns: Pat.Name, Pat.BodyMassIndex,
#: Vis.Purpose, Vis.DocID, Vis.PatID, Pre.Quantity, Pre.WhenWritten,
#: Pre.MedID, Pre.VisID.
DEMO_SCHEMA_DDL = [
    """CREATE TABLE Doctor (
        DocID INTEGER PRIMARY KEY,
        Name CHAR(20),
        Speciality CHAR(20),
        Zip INTEGER,
        Country CHAR(20))""",
    """CREATE TABLE Patient (
        PatID INTEGER PRIMARY KEY,
        Name CHAR(20) HIDDEN,
        Age INTEGER,
        BodyMassIndex FLOAT HIDDEN,
        Country CHAR(20))""",
    """CREATE TABLE Medicine (
        MedID INTEGER PRIMARY KEY,
        Name CHAR(30),
        Effect CHAR(30),
        Type CHAR(20))""",
    """CREATE TABLE Visit (
        VisID INTEGER PRIMARY KEY,
        Date DATE,
        Purpose CHAR(100) HIDDEN,
        DocID REFERENCES Doctor(DocID) HIDDEN,
        PatID REFERENCES Patient(PatID) HIDDEN)""",
    """CREATE TABLE Prescription (
        PreID INTEGER PRIMARY KEY,
        Quantity INTEGER HIDDEN,
        Frequency CHAR(20),
        WhenWritten DATE HIDDEN,
        MedID REFERENCES Medicine(MedID) HIDDEN,
        VisID REFERENCES Visit(VisID) HIDDEN)""",
]


def demo_query(
    date_cutoff: datetime.date = datetime.date(2006, 11, 5),
    purpose: str = "Sclerosis",
    med_type: str = "Antibiotic",
) -> str:
    """The paper's Section 4 query, with its literals as parameters."""
    return f"""
        SELECT Med.Name, Pre.Quantity, Vis.Date
        FROM Medicine Med, Prescription Pre, Visit Vis
        WHERE Vis.Date > DATE '{date_cutoff.isoformat()}'
        AND Vis.Purpose = '{purpose}'
        AND Med.Type = '{med_type}'
        AND Med.MedID = Pre.MedID
        AND Vis.VisID = Pre.VisID
    """


def query_date_selectivity(date_cutoff: datetime.date) -> str:
    """Hidden purpose fixed, visible date predicate of varying
    selectivity: the D2 crossover sweep."""
    return f"""
        SELECT Pre.Quantity, Vis.Date
        FROM Prescription Pre, Visit Vis
        WHERE Vis.Date > DATE '{date_cutoff.isoformat()}'
        AND Vis.Purpose = 'Sclerosis'
        AND Vis.VisID = Pre.VisID
    """


def query_type_selectivity(med_type: str) -> str:
    """Visible medicine-type predicate only (no hidden selection)."""
    return f"""
        SELECT Med.Name, Pre.Quantity
        FROM Medicine Med, Prescription Pre
        WHERE Med.Type = '{med_type}'
        AND Med.MedID = Pre.MedID
    """


def query_purpose_only(purpose: str = "Sclerosis") -> str:
    """Hidden predicate only: pure climbing-index pre-filtering."""
    return f"""
        SELECT Pre.Quantity, Vis.Date
        FROM Prescription Pre, Visit Vis
        WHERE Vis.Purpose = '{purpose}'
        AND Vis.VisID = Pre.VisID
    """


#: The query battery: one representative per query family the engine
#: supports.  The integration suite checks every family against the
#: brute-force reference evaluator; the T9 bench and the ``repro.bench``
#: scorecard grade the optimizer's estimates per family.
QUERY_FAMILIES = {
    "paper-demo": """
        SELECT Med.Name, Pre.Quantity, Vis.Date
        FROM Medicine Med, Prescription Pre, Visit Vis
        WHERE Vis.Date > 05-11-2006
        AND Vis.Purpose = 'Sclerosis'
        AND Med.Type = 'Antibiotic'
        AND Med.MedID = Pre.MedID
        AND Vis.VisID = Pre.VisID
    """,
    "hidden-only": """
        SELECT Pre.Quantity FROM Prescription Pre, Visit Vis
        WHERE Vis.Purpose = 'Neuropathy' AND Vis.VisID = Pre.VisID
    """,
    "visible-only": """
        SELECT Med.Name, Pre.Frequency
        FROM Medicine Med, Prescription Pre
        WHERE Med.Type = 'Statin' AND Med.MedID = Pre.MedID
    """,
    "no-predicates": """
        SELECT Med.Type, Pre.Quantity
        FROM Medicine Med, Prescription Pre
        WHERE Med.MedID = Pre.MedID
    """,
    "hidden-range": """
        SELECT Pre.Quantity, Pre.WhenWritten
        FROM Prescription Pre
        WHERE Pre.Quantity BETWEEN 3 AND 5
    """,
    "hidden-date-range": """
        SELECT Pre.Quantity FROM Prescription Pre
        WHERE Pre.WhenWritten > DATE '2007-01-01'
    """,
    "deep-hidden": """
        SELECT Pre.Quantity, Pat.Name
        FROM Prescription Pre, Visit Vis, Patient Pat
        WHERE Pat.BodyMassIndex > 33.0
        AND Pre.VisID = Vis.VisID
        AND Vis.PatID = Pat.PatID
    """,
    "subtree-root-visit": """
        SELECT Vis.Date, Pat.Age
        FROM Visit Vis, Patient Pat
        WHERE Vis.Purpose = 'Sclerosis'
        AND Pat.Age > 40
        AND Vis.PatID = Pat.PatID
    """,
    "five-way-join": """
        SELECT Med.Name, Doc.Country, Pat.Age, Vis.Date, Pre.Quantity
        FROM Medicine Med, Prescription Pre, Visit Vis, Doctor Doc,
             Patient Pat
        WHERE Vis.Purpose = 'Sclerosis'
        AND Doc.Country = 'France'
        AND Med.MedID = Pre.MedID
        AND Vis.VisID = Pre.VisID
        AND Doc.DocID = Vis.DocID
        AND Pat.PatID = Vis.PatID
    """,
    "mixed-on-one-table": """
        SELECT Vis.Date FROM Visit Vis
        WHERE Vis.Purpose = 'Routine checkup'
        AND Vis.Date > DATE '2006-06-01'
    """,
    "neq-residual": """
        SELECT Pre.Quantity FROM Prescription Pre, Visit Vis
        WHERE Vis.Purpose = 'Sclerosis'
        AND Pre.Quantity <> 5
        AND Vis.VisID = Pre.VisID
    """,
    "projection-of-pks": """
        SELECT Pre.PreID, Vis.VisID FROM Prescription Pre, Visit Vis
        WHERE Vis.Purpose = 'Sclerosis' AND Vis.VisID = Pre.VisID
    """,
    "empty-result": """
        SELECT Pre.Quantity FROM Prescription Pre, Visit Vis
        WHERE Vis.Purpose = 'Sclerosis'
        AND Vis.Date > DATE '2009-01-01'
        AND Vis.VisID = Pre.VisID
    """,
}
