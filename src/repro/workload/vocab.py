"""Vocabularies for the synthetic medical dataset (Figure 3 schema)."""

COUNTRIES = [
    "France", "Spain", "Germany", "Italy", "Belgium", "Portugal",
    "Netherlands", "Austria", "Switzerland", "Greece", "Poland",
    "Sweden", "Norway", "Denmark", "Finland", "Ireland",
]

SPECIALITIES = [
    "Endocrinology", "Cardiology", "Nephrology", "Ophthalmology",
    "Neurology", "General", "Podiatry", "Dietetics",
]

#: Visit purposes: the hidden attribute the demo query selects on.
#: Weights are relative frequencies (Sclerosis is deliberately rare, so a
#: selection on it is highly selective -- the demo's Pre-filtering case).
PURPOSES = [
    ("Routine checkup", 30),
    ("Glycemia control", 20),
    ("Insulin adjustment", 15),
    ("Diet counselling", 10),
    ("Retinopathy screening", 8),
    ("Foot examination", 7),
    ("Hypertension", 5),
    ("Neuropathy", 3),
    ("Sclerosis", 2),
]

MEDICINE_TYPES = [
    ("Insulin", 25),
    ("Antidiabetic", 30),
    ("Antihypertensive", 15),
    ("Statin", 10),
    ("Antibiotic", 10),
    ("Analgesic", 7),
    ("Anticoagulant", 3),
]

MEDICINE_EFFECTS = [
    "Lowers blood glucose", "Lowers blood pressure", "Reduces cholesterol",
    "Fights infection", "Relieves pain", "Prevents clotting",
    "Slows nerve damage",
]

FREQUENCIES = [
    "once daily", "twice daily", "three times daily", "weekly",
    "before meals", "at bedtime", "as needed",
]

FIRST_NAMES = [
    "Marie", "Jean", "Pierre", "Sophie", "Luc", "Claire", "Paul",
    "Anne", "Louis", "Julie", "Hugo", "Emma", "Nina", "Victor",
]

LAST_NAMES = [
    "Martin", "Bernard", "Dubois", "Thomas", "Robert", "Richard",
    "Petit", "Durand", "Leroy", "Moreau", "Simon", "Laurent",
]
