"""Deterministic generator for the demo's medical dataset.

The paper demonstrates on "a synthetic dataset compliant with the schema
described in Figure 3" whose root table (Prescription) holds one million
tuples.  This generator reproduces that shape at any scale: table
cardinalities keep the same ratios, value distributions are skewed the
way the demo's story needs (rare purposes, popular medicine types, Zipfy
countries), and everything is a pure function of the seed.

Rows come out in schema column order, sorted by primary key, ready for
both the visible site loader and the hidden database loader.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass

from repro.workload import vocab


@dataclass(frozen=True)
class DatasetConfig:
    """Scale and shape of the generated dataset.

    The default ratios follow a plausible clinic: ~10 prescriptions per
    visit-patient-pair stream, a doctor sees many visits, medicines are a
    small catalogue.  ``n_prescriptions=1_000_000`` reproduces the demo's
    headline scale.
    """

    n_prescriptions: int = 20_000
    seed: int = 2007
    visits_per_prescription: float = 0.1
    patients_per_visit: float = 0.2
    doctors_per_visit: float = 0.02
    n_medicines: int = 200
    date_start: datetime.date = datetime.date(2005, 1, 1)
    date_end: datetime.date = datetime.date(2007, 6, 30)

    @property
    def n_visits(self) -> int:
        return max(1, round(self.n_prescriptions * self.visits_per_prescription))

    @property
    def n_patients(self) -> int:
        return max(1, round(self.n_visits * self.patients_per_visit))

    @property
    def n_doctors(self) -> int:
        return max(1, round(self.n_visits * self.doctors_per_visit))


def _weighted(rng: random.Random, pairs) -> str:
    values = [v for v, _w in pairs]
    weights = [w for _v, w in pairs]
    return rng.choices(values, weights=weights, k=1)[0]


def _zipf_choice(rng: random.Random, values, s: float = 1.2) -> str:
    weights = [1.0 / (i + 1) ** s for i in range(len(values))]
    return rng.choices(values, weights=weights, k=1)[0]


class MedicalDataGenerator:
    """Generates the five Figure 3 tables, in schema column order."""

    def __init__(self, config: DatasetConfig | None = None):
        self.config = config or DatasetConfig()
        self._rng = random.Random(self.config.seed)

    def generate(self) -> dict[str, list[tuple]]:
        """All tables: {table name (lower) -> rows sorted by PK}."""
        return {
            "doctor": self.doctors(),
            "patient": self.patients(),
            "medicine": self.medicines(),
            "visit": self.visits(),
            "prescription": self.prescriptions(),
        }

    # ------------------------------------------------------------------
    # Per-table generators (order matters: each uses its own RNG stream)
    # ------------------------------------------------------------------

    def doctors(self) -> list[tuple]:
        """(DocID, Name, Speciality, Zip, Country)."""
        rng = random.Random(self.config.seed + 1)
        rows = []
        for doc_id in range(1, self.config.n_doctors + 1):
            name = (
                f"Dr {rng.choice(vocab.FIRST_NAMES)} "
                f"{rng.choice(vocab.LAST_NAMES)}"
            )
            rows.append(
                (
                    doc_id,
                    name[:20],
                    rng.choice(vocab.SPECIALITIES)[:20],
                    rng.randint(10000, 99999),
                    _zipf_choice(rng, vocab.COUNTRIES)[:20],
                )
            )
        return rows

    def patients(self) -> list[tuple]:
        """(PatID, Name^H, Age, BodyMassIndex^H, Country)."""
        rng = random.Random(self.config.seed + 2)
        rows = []
        for pat_id in range(1, self.config.n_patients + 1):
            name = (
                f"{rng.choice(vocab.FIRST_NAMES)} "
                f"{rng.choice(vocab.LAST_NAMES)}"
            )
            rows.append(
                (
                    pat_id,
                    name[:20],
                    rng.randint(8, 95),
                    round(rng.gauss(27.0, 5.0), 1),
                    _zipf_choice(rng, vocab.COUNTRIES)[:20],
                )
            )
        return rows

    def medicines(self) -> list[tuple]:
        """(MedID, Name, Effect, Type)."""
        rng = random.Random(self.config.seed + 3)
        rows = []
        for med_id in range(1, self.config.n_medicines + 1):
            med_type = _weighted(rng, vocab.MEDICINE_TYPES)
            rows.append(
                (
                    med_id,
                    f"{med_type[:12]}-{med_id:04d}",
                    rng.choice(vocab.MEDICINE_EFFECTS)[:30],
                    med_type[:20],
                )
            )
        return rows

    def visits(self) -> list[tuple]:
        """(VisID, Date, Purpose^H, DocID^H, PatID^H)."""
        rng = random.Random(self.config.seed + 4)
        span = (self.config.date_end - self.config.date_start).days
        rows = []
        for vis_id in range(1, self.config.n_visits + 1):
            date = self.config.date_start + datetime.timedelta(
                days=rng.randint(0, span)
            )
            rows.append(
                (
                    vis_id,
                    date,
                    _weighted(rng, vocab.PURPOSES)[:100],
                    rng.randint(1, self.config.n_doctors),
                    rng.randint(1, self.config.n_patients),
                )
            )
        return rows

    def prescriptions(self) -> list[tuple]:
        """(PreID, Quantity^H, Frequency, WhenWritten^H, MedID^H, VisID^H)."""
        rng = random.Random(self.config.seed + 5)
        span = (self.config.date_end - self.config.date_start).days
        rows = []
        for pre_id in range(1, self.config.n_prescriptions + 1):
            rows.append(
                (
                    pre_id,
                    rng.randint(1, 10),
                    rng.choice(vocab.FREQUENCIES)[:20],
                    self.config.date_start
                    + datetime.timedelta(days=rng.randint(0, span)),
                    rng.randint(1, self.config.n_medicines),
                    rng.randint(1, self.config.n_visits),
                )
            )
        return rows
