"""Baseline comparator: diff a bench run against the committed baseline.

The simulated-device metrics in a bench artifact are deterministic, so a
re-run of unchanged code reproduces the baseline *exactly*; any increase
beyond the tolerance is a genuine cost regression introduced by a code
change, not noise.  Host wall time is never gated (see
:data:`repro.bench.artifact.GATED_METRICS`).

Policy:

* a gated metric above ``baseline * (1 + tolerance)`` is a regression;
* a scenario present in the baseline but missing from the run fails
  (coverage must not silently shrink);
* a scenario new in the run is reported but passes (it has no baseline
  yet -- commit a refreshed one);
* mismatched schema version, scale or profile fails outright: the
  numbers would not be comparable.

Usable as a library (:func:`compare_artifacts`) or directly::

    python -m repro.bench.compare benchmarks/baseline.json BENCH_x.json
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.bench.artifact import GATED_METRICS, load_artifact

#: Relative headroom a gated metric may grow before failing.  The
#: default absorbs rounding-scale drift while still catching any real
#: change; identical code reproduces the baseline exactly.
DEFAULT_TOLERANCE = 0.02

#: Ceiling on the flight recorder's estimated share of host wall time.
#: The recorder is always on, so its cost rides every measurement; a
#: run whose ``recorder.overhead_fraction`` reaches this fails.
RECORDER_OVERHEAD_BUDGET = 0.05


@dataclass
class MetricDelta:
    """One gated metric compared across the two artifacts."""

    scenario: str
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return 1.0 if self.current == 0 else float("inf")
        return self.current / self.baseline

    def line(self) -> str:
        return (
            f"{self.scenario}: {self.metric} "
            f"{self.baseline:g} -> {self.current:g} "
            f"({self.ratio - 1:+.1%})"
        )


@dataclass
class ComparisonReport:
    """Outcome of one baseline comparison."""

    tolerance: float
    scenarios_compared: int = 0
    regressions: list[MetricDelta] = field(default_factory=list)
    improvements: list[MetricDelta] = field(default_factory=list)
    #: Scenarios whose request-sequence signature changed: the logical
    #: message sequence itself differs, which no tolerance can excuse
    #: (the signature is invariant under fault-injection retries by
    #: construction, so a change means the protocol conversation moved).
    signature_changes: list[str] = field(default_factory=list)
    missing_scenarios: list[str] = field(default_factory=list)
    new_scenarios: list[str] = field(default_factory=list)
    config_errors: list[str] = field(default_factory=list)
    #: Concurrent scenarios whose Jain fairness index landed below the
    #: floor their own row declares (``fairness_floor``).  An absolute
    #: gate on the *current* run, baseline or not: scheduling fairness
    #: is a contract, not a diff.
    fairness_failures: list[str] = field(default_factory=list)
    #: total host wall seconds summed across compared scenarios --
    #: informational only, never gated (host timing is noisy).
    baseline_wall_s: float = 0.0
    current_wall_s: float = 0.0
    #: the current run's ``recorder`` section (flight-recorder journal
    #: volume and measured host cost); ``None`` for pre-v4 artifacts.
    recorder: dict | None = None

    @property
    def recorder_ok(self) -> bool:
        if not self.recorder:
            return True
        fraction = float(self.recorder.get("overhead_fraction", 0.0))
        return fraction < RECORDER_OVERHEAD_BUDGET

    @property
    def ok(self) -> bool:
        return not (
            self.regressions
            or self.signature_changes
            or self.missing_scenarios
            or self.config_errors
            or self.fairness_failures
        ) and self.recorder_ok

    def render(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"bench comparison: {status} "
            f"({self.scenarios_compared} scenarios x "
            f"{len(GATED_METRICS)} gated metrics, "
            f"tolerance {self.tolerance:.0%})"
        ]
        for error in self.config_errors:
            lines.append(f"  config mismatch: {error}")
        for name in self.missing_scenarios:
            lines.append(f"  missing scenario: {name} (in baseline, not run)")
        for delta in self.regressions:
            lines.append(f"  REGRESSION {delta.line()}")
        for line in self.signature_changes:
            lines.append(f"  SIGNATURE CHANGED {line}")
        for line in self.fairness_failures:
            lines.append(f"  UNFAIR SCHEDULE {line}")
        for delta in self.improvements:
            lines.append(f"  improved   {delta.line()}")
        for name in self.new_scenarios:
            lines.append(
                f"  new scenario: {name} (no baseline -- commit a "
                f"refreshed benchmarks/baseline.json)"
            )
        if self.recorder:
            fraction = float(self.recorder.get("overhead_fraction", 0.0))
            events = self.recorder.get("total_events", 0)
            per_event = float(self.recorder.get("per_event_seconds", 0.0))
            verdict = (
                "within budget"
                if self.recorder_ok
                else f"OVER BUDGET (>= {RECORDER_OVERHEAD_BUDGET:.0%})"
            )
            lines.append(
                f"  recorder overhead: {fraction:.3%} of host wall "
                f"({events} events x {per_event * 1e9:.0f} ns) -- "
                f"{verdict}"
            )
        if self.baseline_wall_s or self.current_wall_s:
            if self.baseline_wall_s > 0:
                trend = (
                    f"{self.current_wall_s / self.baseline_wall_s:.2f}x, "
                )
            else:
                trend = ""
            lines.append(
                f"  host wall: {self.baseline_wall_s:.2f}s baseline -> "
                f"{self.current_wall_s:.2f}s current ({trend}informational, "
                f"never gated)"
            )
        return "\n".join(lines)


def compare_artifacts(
    baseline: dict,
    current: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> ComparisonReport:
    """Diff two artifact dicts; see the module docstring for policy."""
    report = ComparisonReport(
        tolerance=tolerance, recorder=current.get("recorder") or None
    )
    for key in ("schema_version",):
        if baseline.get(key) != current.get(key):
            report.config_errors.append(
                f"{key}: baseline {baseline.get(key)!r} "
                f"vs run {current.get(key)!r}"
            )
    base_cfg = baseline.get("config", {})
    cur_cfg = current.get("config", {})
    for key in ("scale", "profile"):
        if base_cfg.get(key) != cur_cfg.get(key):
            report.config_errors.append(
                f"config.{key}: baseline {base_cfg.get(key)!r} "
                f"vs run {cur_cfg.get(key)!r}"
            )

    base_scenarios = baseline.get("scenarios", {})
    cur_scenarios = current.get("scenarios", {})
    report.missing_scenarios = sorted(
        set(base_scenarios) - set(cur_scenarios)
    )
    report.new_scenarios = sorted(set(cur_scenarios) - set(base_scenarios))
    for name in sorted(set(base_scenarios) & set(cur_scenarios)):
        report.scenarios_compared += 1
        base_row = base_scenarios[name]
        cur_row = cur_scenarios[name]
        report.baseline_wall_s += float(base_row.get("wall_seconds", 0.0))
        report.current_wall_s += float(cur_row.get("wall_seconds", 0.0))
        for metric in GATED_METRICS:
            delta = MetricDelta(
                scenario=name,
                metric=metric,
                baseline=float(base_row.get(metric, 0)),
                current=float(cur_row.get(metric, 0)),
            )
            if delta.current > delta.baseline * (1 + tolerance):
                report.regressions.append(delta)
            elif delta.current < delta.baseline * (1 - tolerance):
                report.improvements.append(delta)
        base_sig = base_row.get("leak_request_signature", "")
        cur_sig = cur_row.get("leak_request_signature", "")
        if base_sig != cur_sig:
            report.signature_changes.append(
                f"{name}: {base_sig or '(none)'} -> {cur_sig or '(none)'}"
            )
    # Fairness is self-describing and absolute: every current-run row
    # carrying a floor is gated, including scenarios too new to have a
    # baseline entry.
    for name in sorted(cur_scenarios):
        row = cur_scenarios[name]
        floor = row.get("fairness_floor")
        if floor is None:
            continue
        index = float(row.get("fairness_index", 0.0))
        if index < float(floor):
            report.fairness_failures.append(
                f"{name}: fairness index {index:.4f} < floor {floor:g}"
            )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.compare",
        description="diff a bench artifact against a committed baseline",
    )
    parser.add_argument("baseline", help="the committed baseline JSON")
    parser.add_argument("current", help="the fresh BENCH_*.json run")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="relative headroom before a gated metric fails "
        f"(default {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)
    report = compare_artifacts(
        load_artifact(args.baseline),
        load_artifact(args.current),
        tolerance=args.tolerance,
    )
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
