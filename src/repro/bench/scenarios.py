"""The figure/table scenarios the bench runner measures.

Each scenario reproduces one bar/point of a paper figure or table as a
single measured execution on a loaded session: the runner resets the
device counters, calls :attr:`Scenario.run`, and records the resulting
:class:`~repro.engine.metrics.ExecutionMetrics` diff.  Scenario names
are stable identifiers -- they key the artifact and the committed
baseline, so renaming one is a baseline change.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Callable

from repro.baselines import run_hash_join_query, run_join_index_query
from repro.optimizer.space import Strategy
from repro.workload.queries import QUERY_FAMILIES, demo_query

#: T8's hospital-statistics aggregate over hidden columns.
AGGREGATE_SQL = """
    SELECT Vis.Purpose, count(*), avg(Pre.Quantity)
    FROM Prescription Pre, Visit Vis
    WHERE Vis.VisID = Pre.VisID
    GROUP BY Vis.Purpose
"""


def _sweep_sql(cutoff: datetime.date) -> str:
    """The D2 Pre-vs-Post sweep query at one visible selectivity."""
    return f"""
        SELECT Pre.Quantity FROM Prescription Pre, Visit Vis
        WHERE Vis.Date > DATE '{cutoff.isoformat()}'
        AND Pre.Quantity = 7
        AND Pre.WhenWritten > DATE '2007-04-01'
        AND Vis.VisID = Pre.VisID
    """


#: D2 sweep endpoints: a selective (~1%) and a wide (~80%) date cut.
SELECTIVE_CUT = datetime.date(2007, 6, 20)
WIDE_CUT = datetime.date(2005, 7, 1)

#: Pool size the cache pair runs under: most of the demo profile's
#: 32-page RAM budget.  The default pool is deliberately small (a
#: quarter of RAM) and gets thrashed or shed before a re-run can hit
#: it; the pair instead measures a pool sized to keep its query's read
#: set resident, so the warm half shows the cache's headline win.
CACHE_PAIR_PAGES = 24

#: The cache pair's query: a PK projection whose full-page read set is
#: small enough to stay resident across back-to-back runs at the
#: committed baseline scale.
CACHE_PAIR_SQL_FAMILY = "projection-of-pks"


@dataclass(frozen=True)
class Scenario:
    """One named, single-execution measurement."""

    name: str
    #: Which reproduced figure/table this point belongs to.
    family: str
    run: Callable

    def __call__(self, session):
        return self.run(session)


def _query(sql: str):
    return lambda session: session.query(sql)


def _strategy(sql: str, steps: tuple):
    return lambda session: session.query_with_strategy(sql, Strategy(steps))


def _fig5_plan(session):
    from repro.demo.plans import figure5_postfilter_plan

    bound = session.bind(demo_query())
    plan = figure5_postfilter_plan(session.hidden, bound)
    session.optimizer.annotate(plan)
    return session.executor.execute(plan)


def _fig6_p1_plan(session):
    from repro.demo.plans import named_demo_plans

    bound = session.bind(demo_query())
    plan = named_demo_plans(session.hidden, bound)["P1 (pre-filtering)"]
    session.optimizer.annotate(plan)
    return session.executor.execute(plan)


#: Attempts a chaos scenario gets before the run is declared broken.
#: The schedules are fixed-seed, so in practice each scenario needs the
#: same number of attempts on every run.
CHAOS_MAX_ATTEMPTS = 8


def _chaos(profile_name: str, seed: int):
    """Run the demo query under a fixed-seed fault schedule.

    A clean reference answer is taken first; the faulted run must then
    produce the identical rows (retrying and remounting as needed) or
    the scenario raises -- silent wrong answers under faults are exactly
    what the bench gate exists to catch.
    """

    def run(session):
        from repro.faults import GhostDBFaultError

        sql = demo_query()
        reference = session.query(sql)
        session.set_faults(profile_name, seed)
        result = None
        try:
            for _ in range(CHAOS_MAX_ATTEMPTS):
                try:
                    result = session.query(sql)
                    break
                except GhostDBFaultError:
                    if session.needs_remount:
                        session.remount()
        finally:
            session.clear_faults()
            if session.needs_remount:
                session.remount()
        if result is None:
            raise RuntimeError(
                f"chaos scenario gave up after {CHAOS_MAX_ATTEMPTS} "
                f"attempts (profile={profile_name}, seed={seed})"
            )
        if result.rows != reference.rows:
            raise RuntimeError(
                f"chaos answer diverged from the clean reference "
                f"(profile={profile_name}, seed={seed})"
            )
        return result

    return run


def _chaos_powercut(session):
    """Guaranteed power cut mid-query, then remount and re-answer.

    Exercises the full recovery path: the scheduled cut kills the query
    at a fixed flash-op index, the remount's recovery scan rebuilds the
    FTL map, and the re-run must reproduce the clean answer."""
    from repro.faults import PowerCutError

    sql = demo_query()
    reference = session.query(sql)
    injector = session.set_faults("none", seed=0)
    # Early enough that the demo query reaches it even at the smallest
    # scale the bench tests use (13 flash ops at scale 300).
    injector.schedule_power_cut(at_flash_op=8)
    cut = False
    try:
        try:
            session.query(sql)
        except PowerCutError:
            cut = True
    finally:
        session.clear_faults()
    if not cut:
        raise RuntimeError("scheduled power cut never fired")
    session.remount()
    result = session.query(sql)
    if result.rows != reference.rows:
        raise RuntimeError("post-remount answer diverged from reference")
    return result


def _cache_sized(session):
    """Context for the cache pair: a pool of :data:`CACHE_PAIR_PAGES`."""
    prior = session.device.page_cache.capacity_pages
    session.set_cache(CACHE_PAIR_PAGES)
    return prior


def _cache_cold(session):
    """First run of the pair's query on an empty, pair-sized pool."""
    prior = _cache_sized(session)
    try:
        return session.query(QUERY_FAMILIES[CACHE_PAIR_SQL_FAMILY])
    finally:
        session.set_cache(prior)


def _cache_warm(session):
    """Re-run with the pool still warm from an identical first run.

    The committed baseline pins the warm run's strict
    ``flash_page_reads``/``sim_seconds`` win over the cold scenario at
    the bench scale (tolerance zero -- any erosion of the gap fails the
    comparator).  In here only the scale-independent invariants are
    asserted: a warm pool may remove device work but must never add
    any, never change the answer, and never change what crosses the
    USB wire -- hits are invisible to the spy by construction.
    """
    from repro.privacy.meter import profile_records

    sql = QUERY_FAMILIES[CACHE_PAIR_SQL_FAMILY]
    prior = _cache_sized(session)
    try:
        cold_mark = len(session.device.usb.log)
        cold = session.query(sql)
        warm_mark = len(session.device.usb.log)
        warm = session.query(sql)
    finally:
        session.set_cache(prior)
    if warm.rows != cold.rows:
        raise RuntimeError("warm re-run changed the answer")
    cold_sig = profile_records(
        session.device.usb.log[cold_mark:warm_mark]
    ).signature
    warm_sig = profile_records(session.device.usb.log[warm_mark:]).signature
    if warm_sig != cold_sig:
        raise RuntimeError(
            f"buffer pool changed the request-sequence signature "
            f"({cold_sig} cold vs {warm_sig} warm) -- hits must save "
            f"device time, never alter USB traffic"
        )
    if warm.metrics.flash_page_reads > cold.metrics.flash_page_reads:
        raise RuntimeError(
            f"warm run read more flash pages than cold "
            f"({warm.metrics.flash_page_reads} vs "
            f"{cold.metrics.flash_page_reads})"
        )
    if warm.metrics.elapsed_seconds > cold.metrics.elapsed_seconds:
        raise RuntimeError(
            f"warm run was slower than cold "
            f"({warm.metrics.elapsed_seconds} vs "
            f"{cold.metrics.elapsed_seconds} simulated seconds)"
        )
    return warm


def _leak_signature(fault_profile: str | None, seed: int = 0):
    """Run the demo query and pin its traffic-shape contract.

    The ``none`` variant is the clean half of the pair; the faulted
    variant re-runs the same query under a fixed-seed fault schedule and
    asserts the property the leakage meter's classifier keys on: retries
    and refragmentation change *timing*, never the request-sequence
    signature.  A signature drift under faults would mean the fault path
    changes what the spy can fingerprint -- a silent contract break this
    scenario turns into a loud one.
    """

    def run(session):
        from repro.faults import GhostDBFaultError
        from repro.privacy.meter import profile_records

        sql = demo_query()
        mark = len(session.device.usb.log)
        reference = session.query(sql)
        clean = profile_records(session.device.usb.log[mark:])
        if fault_profile is None:
            return reference
        session.set_faults(fault_profile, seed)
        result = None
        try:
            for _ in range(CHAOS_MAX_ATTEMPTS):
                mark = len(session.device.usb.log)
                try:
                    result = session.query(sql)
                    break
                except GhostDBFaultError:
                    if session.needs_remount:
                        session.remount()
        finally:
            session.clear_faults()
            if session.needs_remount:
                session.remount()
        if result is None:
            raise RuntimeError(
                f"leak-signature scenario gave up after "
                f"{CHAOS_MAX_ATTEMPTS} attempts (profile={fault_profile}, "
                f"seed={seed})"
            )
        faulted = profile_records(session.device.usb.log[mark:])
        if result.rows != reference.rows:
            raise RuntimeError(
                "faulted answer diverged from the clean reference"
            )
        if faulted.signature != clean.signature:
            raise RuntimeError(
                f"request-sequence signature drifted under faults: "
                f"{clean.signature} clean vs {faulted.signature} faulted "
                f"-- retries must change timing, not the logical sequence"
            )
        if faulted.retransmissions and not (
            faulted.sim_duration_s > clean.sim_duration_s
        ):
            raise RuntimeError(
                "retransmissions should show up as simulated time "
                "(timing is the channel faults are allowed to move)"
            )
        return result

    return run


# ----------------------------------------------------------------------
# Sustained-DML endurance scenarios
# ----------------------------------------------------------------------

#: A quantity value the generated dataset never contains, so the
#: roundtrip's revert restores the exact starting state.
DML_SENTINEL = 4242


def _assert_dml_silent(session, mark: int, what: str) -> None:
    """DML travels the secure channel: zero observable USB traffic.

    This is the property that keeps every *read* scenario's leak
    signature byte-identical whether or not the workload also mutates
    data -- a DML statement that announced itself would hand the spy the
    hidden values named in its text."""
    if len(session.device.usb.log) != mark:
        raise RuntimeError(
            f"{what} generated USB traffic -- DML must stay on the "
            f"secure channel"
        )


def _dml_update_roundtrip(session):
    """Measure a value-matched hidden-column UPDATE, then revert it.

    The revert restores the loaded dataset exactly, so scenario order
    stays irrelevant and the scorecard still measures clean data; only
    the forward statement's metrics are recorded."""
    mark = len(session.device.usb.log)
    result = session.execute(
        f"UPDATE Prescription SET Quantity = {DML_SENTINEL} "
        f"WHERE Quantity = 7"
    )
    session.execute(
        f"UPDATE Prescription SET Quantity = 7 "
        f"WHERE Quantity = {DML_SENTINEL}"
    )
    _assert_dml_silent(session, mark, "update")
    if result.matched == 0:
        raise RuntimeError(
            "roundtrip update matched nothing; the scenario measured "
            "a no-op"
        )
    return result


def _dml_delete_appended(session):
    """Append a batch of fresh rows, then measure deleting them.

    Self-restoring like the roundtrip: the deleted keys are exactly the
    appended ones (all above the loaded maximum), so the table ends in
    its starting state."""
    heap = session.hidden.heaps["prescription"]
    max_pk = heap.pk_of_rowid(heap.count - 1)
    visits = session.hidden.heaps["visit"]
    vis_pk = visits.pk_of_rowid(visits.count - 1)
    meds = session.hidden.heaps["medicine"]
    med_pk = meds.pk_of_rowid(0)
    rows = [
        (
            max_pk + i,
            7,
            "2x daily",
            datetime.date(2026, 1, 1),
            med_pk,
            vis_pk,
        )
        for i in range(1, 33)
    ]
    mark = len(session.device.usb.log)
    session.append("prescription", rows)
    result = session.execute(
        f"DELETE FROM Prescription WHERE PreID > {max_pk}"
    )
    _assert_dml_silent(session, mark, "delete")
    if result.matched != len(rows):
        raise RuntimeError(
            f"delete matched {result.matched} of the {len(rows)} "
            f"appended rows"
        )
    return result


def _dml_noop_update(session):
    """A no-match UPDATE: scan cost only, zero flash writes.

    Pins the no-op short-circuit -- a statement that matches nothing
    must never rebuild the table."""
    result = session.execute(
        "UPDATE Prescription SET Quantity = 1 WHERE Quantity = 424242"
    )
    if result.matched or result.metrics.flash_page_writes:
        raise RuntimeError(
            "no-match update touched flash -- the no-op short-circuit "
            "broke"
        )
    return result


def _endurance_update_churn(session):
    """Repeated full roundtrips: steady-state update cost under churn.

    Six table rebuilds back to back drive allocation, garbage
    collection and wear levelling harder than any single statement; the
    recorded metrics are the final revert's -- the steady-state cost
    after the churn, which a wear-ladder regression (throttling, GC
    thrash) would inflate."""
    last = None
    for _ in range(3):
        session.execute(
            f"UPDATE Prescription SET Quantity = {DML_SENTINEL} "
            f"WHERE Quantity = 7"
        )
        last = session.execute(
            f"UPDATE Prescription SET Quantity = 7 "
            f"WHERE Quantity = {DML_SENTINEL}"
        )
    if last.matched == 0:
        raise RuntimeError("churn updates matched nothing")
    return last


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank-with-interpolation percentile of ``values``."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    position = (len(ordered) - 1) * q
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1 - weight) + ordered[upper] * weight


def _concurrent(per_session_sql: list[list[str]], fairness_floor=None):
    """A multi-client scenario: open one leased session per statement
    list, interleave everything under the DRR scheduler, and fold the
    per-ticket metrics into one gate-able record.

    The recorded :class:`ExecutionMetrics` sums the per-ticket diffs
    (``ram_high_water`` sums the per-session partition peaks -- the
    acceptance bound is that this stays within the secure budget);
    ``bench_extra`` adds the latency percentiles and the Jain fairness
    index over per-session mean latency.  ``fairness_floor`` makes the
    row self-describing: the comparator fails the run when the index
    lands below it.
    """

    def run(session):
        from repro.core.scheduler import Scheduler, jain_index
        from repro.engine.metrics import ExecutionMetrics

        core = session.core
        partition = core.profile.ram_bytes // 4
        clients = [
            core.open_session(name=f"bench-client-{i}", ram_bytes=partition)
            for i in range(len(per_session_sql))
        ]
        try:
            scheduler = Scheduler(core)
            by_session: dict[str, list] = {c.name: [] for c in clients}
            # Statement-index-major submission: every client's first
            # statement queues before anyone's second, like clients
            # arriving together.
            rounds = max(len(sqls) for sqls in per_session_sql)
            for i in range(rounds):
                for client, sqls in zip(clients, per_session_sql):
                    if i < len(sqls):
                        by_session[client.name].append(
                            scheduler.submit(client, sqls[i])
                        )
            tickets = [t for ts in by_session.values() for t in ts]
            scheduler.run()

            total = ExecutionMetrics()
            for ticket in tickets:
                if ticket.error is not None:
                    raise ticket.error
                metrics = ticket.result.metrics
                total.time = total.time + metrics.time
                total.flash_page_reads += metrics.flash_page_reads
                total.flash_page_writes += metrics.flash_page_writes
                total.flash_block_erases += metrics.flash_block_erases
                total.usb_messages += metrics.usb_messages
                total.usb_bytes_to_device += metrics.usb_bytes_to_device
                total.usb_bytes_to_host += metrics.usb_bytes_to_host
                total.result_rows += metrics.result_rows
                total.cache_hits += metrics.cache_hits
                total.cache_misses += metrics.cache_misses
            total.ram_high_water = sum(
                client.lease.ram.high_water for client in clients
            )
            if total.ram_high_water > core.profile.ram_bytes:
                raise RuntimeError(
                    "summed session RAM peaks exceed the secure budget"
                )

            latencies = [t.latency_s for t in tickets]
            session_means = [
                sum(t.latency_s for t in ts) / len(ts)
                for ts in by_session.values()
                if ts
            ]
            extra = {
                "sessions": len(clients),
                "queries": len(tickets),
                "fairness_index": round(jain_index(session_means), 6),
                "latency_p50_s": round(_percentile(latencies, 0.50), 9),
                "latency_p95_s": round(_percentile(latencies, 0.95), 9),
            }
            if fairness_floor is not None:
                extra["fairness_floor"] = fairness_floor
            return _ConcurrentResult(metrics=total, bench_extra=extra)
        finally:
            for client in clients:
                core.close_session(client)

    return run


@dataclass
class _ConcurrentResult:
    """What a concurrent scenario hands the runner: summed metrics plus
    the fairness/latency columns to merge into the artifact row."""

    metrics: object
    bench_extra: dict


#: The uniform mix every concurrent client runs: one join-heavy, one
#: light-visible, one hidden-selection statement.
_CONCURRENT_MIX = [
    demo_query(),
    QUERY_FAMILIES["visible-only"],
    QUERY_FAMILIES["hidden-only"],
]


SCENARIOS: tuple[Scenario, ...] = (
    # Figure 1 / Section 4: the demo query under the optimizer's plan.
    Scenario("fig1-demo-query", "fig1", _query(demo_query())),
    # T1: the same query under the baseline execution models.
    Scenario(
        "t1-join-index",
        "t1",
        lambda session: run_join_index_query(session, demo_query()),
    ),
    Scenario(
        "t1-hash-join",
        "t1",
        lambda session: run_hash_join_query(session, demo_query()),
    ),
    # Figure 4: deep hidden selection through the climbing index.
    Scenario(
        "fig4-deep-climbing", "fig4", _query(QUERY_FAMILIES["deep-hidden"])
    ),
    # Figure 5: the Post-filtering QEP exactly as drawn.
    Scenario("fig5-post-plan", "fig5", _fig5_plan),
    # Figure 6: the P1 pre-filtering bar.
    Scenario("fig6-p1-pre-plan", "fig6", _fig6_p1_plan),
    # D2: the Pre-vs-Post sweep's endpoints, both strategies each.
    Scenario(
        "d2-pre-selective", "d2", _strategy(_sweep_sql(SELECTIVE_CUT), ("pre",))
    ),
    Scenario(
        "d2-post-selective",
        "d2",
        _strategy(_sweep_sql(SELECTIVE_CUT), ("post",)),
    ),
    Scenario("d2-pre-wide", "d2", _strategy(_sweep_sql(WIDE_CUT), ("pre",))),
    Scenario("d2-post-wide", "d2", _strategy(_sweep_sql(WIDE_CUT), ("post",))),
    # T8: device-side aggregation.
    Scenario("t8-group-aggregate", "t8", _query(AGGREGATE_SQL)),
    # Query-battery representatives that stress distinct machinery.
    Scenario(
        "battery-five-way-join",
        "battery",
        _query(QUERY_FAMILIES["five-way-join"]),
    ),
    Scenario(
        "battery-hidden-range",
        "battery",
        _query(QUERY_FAMILIES["hidden-range"]),
    ),
    # Buffer pool: the same query cold and then warm.  The committed
    # baseline pins the warm run's flash/sim win at the bench scale;
    # the warm scenario additionally asserts in-line that the pool
    # never adds work, never changes the answer, and never changes the
    # USB traffic shape.
    Scenario("cache-cold-rescan", "cache", _cache_cold),
    Scenario("cache-warm-rescan", "cache", _cache_warm),
    # Chaos: the demo query under fixed-seed fault schedules.  Gated
    # like every other scenario -- the fault path's cost is part of the
    # contract, and a changed schedule shows up as a metric diff.
    Scenario("chaos-usb-demo", "chaos", _chaos("usb", seed=1)),
    Scenario("chaos-flash-demo", "chaos", _chaos("flash", seed=2)),
    Scenario("chaos-mixed-demo", "chaos", _chaos("mixed", seed=3)),
    Scenario("chaos-powercut-remount", "chaos", _chaos_powercut),
    # Leakage: the same query under a clean and a faulted link.  The
    # pair pins the meter's invariance contract -- fault retries move
    # timing, never the request-sequence signature the fingerprinting
    # classifier keys on.
    Scenario("leak-signature-none", "leak", _leak_signature(None)),
    # Seed 1 manifests USB retransmissions at both the bench default
    # and the test scale, so the pair actually exercises the retry path.
    Scenario(
        "leak-signature-mixed", "leak", _leak_signature("mixed", seed=1)
    ),
    # Sustained-DML endurance: UPDATE/DELETE cost through the crash-safe
    # rebuild discipline.  Every scenario restores the loaded dataset
    # before returning (ordering stays irrelevant) and asserts in-line
    # that DML never crosses the spied USB link.
    Scenario("dml-update-roundtrip", "dml", _dml_update_roundtrip),
    Scenario("dml-delete-appended", "dml", _dml_delete_appended),
    Scenario("dml-noop-update", "dml", _dml_noop_update),
    Scenario(
        "endurance-update-churn", "endurance", _endurance_update_churn
    ),
    # Concurrent clients: four leased sessions interleaved by the DRR
    # scheduler.  Per-ticket metrics stay bit-identical to serial runs
    # (the sessions test suite pins that); what these rows gate is the
    # *scheduling* contract -- total device work, summed partition
    # peaks within the secure budget and, for the uniform mix, a Jain
    # fairness index at or above the committed floor.
    Scenario(
        "concurrent-uniform-mix",
        "concurrent",
        _concurrent([_CONCURRENT_MIX] * 4, fairness_floor=0.9),
    ),
    # One tenant runs the heavy join mix three times over while three
    # light tenants run a single visible selection each: DRR should
    # keep the light tenants' latency from scaling with the heavy
    # tenant's appetite.  No floor -- per-session mean latencies are
    # intentionally skewed; the row records the index so drift shows.
    Scenario(
        "concurrent-heavy-tenant",
        "concurrent",
        _concurrent(
            [_CONCURRENT_MIX * 3]
            + [[QUERY_FAMILIES["visible-only"]]] * 3
        ),
    ),
)


def select_scenarios(names: list[str] | None = None) -> list[Scenario]:
    """The scenarios to run, optionally filtered by exact name."""
    if not names:
        return list(SCENARIOS)
    by_name = {s.name: s for s in SCENARIOS}
    unknown = [n for n in names if n not in by_name]
    if unknown:
        known = ", ".join(sorted(by_name))
        raise KeyError(f"unknown scenario(s) {unknown}; known: {known}")
    return [by_name[n] for n in names]
