"""Schema-versioned benchmark artifacts (``BENCH_<date>.json``).

One bench run produces one JSON artifact: per-scenario simulated-device
measurements (deterministic -- same code, same scale, same numbers),
host wall times (informational only), and the optimizer estimate-quality
scorecard.  The comparator in :mod:`repro.bench.compare` diffs two
artifacts; CI commits one as ``benchmarks/baseline.json`` and gates on
the diff.

Artifacts are observable execution artefacts, so they pass through the
same :mod:`repro.obs.redact` gate as trace spans before serialization:
every string is tokenised and out-of-vocabulary tokens scrub to ``?``.
The runner then verifies the serialized payload CLEAN with the
adversarial :class:`~repro.privacy.leakcheck.LeakChecker`.
"""

from __future__ import annotations

import json

from repro.obs.redact import Redactor

#: Bump on any incompatible change to the artifact layout.  The
#: comparator refuses to diff artifacts of different versions.
#: v2 added the per-scenario ``leak_*`` leakage columns.
#: v3 added the buffer-pool ``cache_hits``/``cache_misses`` columns.
#: v4 added the ``flight_events`` column and the top-level ``recorder``
#: overhead section (the comparator gates its host-wall fraction < 5%).
SCHEMA_VERSION = 4

#: Artifact discriminator, so tooling can reject arbitrary JSON.
KIND = "ghostdb-bench"

#: Per-scenario metrics the comparator gates on.  All are deterministic
#: functions of the code and the scenario (simulated device time and
#: event counts); ``wall_seconds`` is deliberately absent -- host speed
#: is informational, never a regression signal.
GATED_METRICS = (
    "sim_seconds",
    "flash_page_reads",
    "flash_page_writes",
    "flash_block_erases",
    "usb_messages",
    "usb_bytes_to_device",
    "usb_bytes_to_host",
    "ram_high_water",
    # Adversary-eye leakage columns (v2): what the scenario's traffic
    # shape reveals.  Deterministic like the rest, gated like the rest --
    # a wider observable channel is a regression even when it is faster.
    "leak_observable_bytes",
    "leak_messages",
    "leak_ids_observed",
)


#: Keys whose string values are shape-derived hex signatures (see
#: :data:`repro.privacy.meter.SIGNATURE_KEYS` for the meter's own
#: artifact) and therefore pass the redaction gate unscrubbed.
SIGNATURE_KEYS = frozenset({"leak_request_signature", "request_signature", "signatures"})


def scenario_record(
    metrics, wall_seconds: float, family: str, leak=None,
    flight_events: int = 0, extra: dict | None = None,
) -> dict:
    """One scenario's measurements as a plain JSON-ready dict.

    ``metrics`` is the :class:`~repro.engine.metrics.ExecutionMetrics`
    diff of the scenario's single measured execution; ``leak`` is the
    :class:`~repro.privacy.meter.TrafficProfile` of the traffic that
    execution produced (``None`` leaves the leakage columns at zero,
    for scenarios that never touch the boundary); ``flight_events`` is
    how many flight-recorder events the scenario journalled; ``extra``
    merges scenario-specific numeric columns (the concurrent scenarios'
    fairness index / latency percentiles, with ``fairness_floor``
    making the row self-describing for the comparator's gate).
    """
    record = {
        "family": family,
        "sim_seconds": metrics.elapsed_seconds,
        "sim_breakdown": metrics.time.as_dict(),
        "flash_page_reads": metrics.flash_page_reads,
        "flash_page_writes": metrics.flash_page_writes,
        "flash_block_erases": metrics.flash_block_erases,
        "usb_messages": metrics.usb_messages,
        "usb_bytes_to_device": metrics.usb_bytes_to_device,
        "usb_bytes_to_host": metrics.usb_bytes_to_host,
        "ram_high_water": metrics.ram_high_water,
        # Buffer-pool traffic is deterministic like the rest but not
        # gated: more hits is an improvement, and the cost side of a
        # miss is already gated through ``flash_page_reads``.
        "cache_hits": metrics.cache_hits,
        "cache_misses": metrics.cache_misses,
        "result_rows": metrics.result_rows,
        "wall_seconds": wall_seconds,
        # Flight-recorder journal volume: deterministic but not gated --
        # richer instrumentation must not read as a cost regression.
        "flight_events": flight_events,
        "leak_observable_bytes": 0,
        "leak_messages": 0,
        "leak_ids_observed": 0,
        "leak_distinct_shapes": 0,
        "leak_shape_entropy_bits": 0.0,
        "leak_request_signature": "",
    }
    if leak is not None:
        record.update(
            leak_observable_bytes=leak.observable_bytes,
            leak_messages=leak.messages,
            leak_ids_observed=leak.ids_observed,
            leak_distinct_shapes=leak.distinct_shapes,
            leak_shape_entropy_bits=round(leak.shape_entropy_bits, 6),
            leak_request_signature=leak.signature,
        )
    if extra:
        record.update(extra)
    return record


def build_artifact(
    *,
    scale: int,
    profile: str,
    created: str,
    scenarios: dict[str, dict],
    scorecard: dict[str, dict],
    recorder: dict | None = None,
) -> dict:
    """Assemble the full artifact dict (pre-redaction).

    ``recorder`` is the flight-recorder overhead section built by the
    runner (total events, measured per-event host cost, and the
    estimated fraction of scenario wall time spent journalling); the
    comparator fails a run whose fraction reaches 5%.
    """
    return {
        "kind": KIND,
        "schema_version": SCHEMA_VERSION,
        "created": created,
        "config": {"scale": scale, "profile": profile},
        "scenarios": scenarios,
        "scorecard": scorecard,
        "recorder": recorder or {},
        "leak_check": "CLEAN",
    }


def _allow_structure(redactor: Redactor, artifact: dict) -> None:
    """Register the artifact's *structural* tokens with the gate.

    Dict keys are authored by this code base (scenario names, family
    slugs, metric names) and are therefore safe vocabulary.  String
    *values* stay default-deny except the known structural fields
    (kind / created / profile) and signature hex digests -- which are
    CRCs of traffic *shape*, computed by the meter, never data; anything
    else that sneaks in as a string value scrubs to ``?`` and shows up
    in review instead of leaking.
    """
    redactor.allow(
        artifact.get("kind", ""),
        artifact.get("created", ""),
        artifact.get("config", {}).get("profile", ""),
        artifact.get("leak_check", ""),
    )

    def _keys(value, parent_key: str = "") -> None:
        if isinstance(value, dict):
            for key, sub in value.items():
                redactor.allow(str(key))
                _keys(sub, str(key))
        elif isinstance(value, (list, tuple)):
            for sub in value:
                _keys(sub, parent_key)
        elif isinstance(value, str) and parent_key in SIGNATURE_KEYS:
            redactor.allow(value)

    _keys(artifact)


def to_payload(artifact: dict, redactor: Redactor | None = None) -> bytes:
    """Gate the artifact through redaction and serialize it.

    A fresh default-deny :class:`Redactor` is used unless one is given
    (the runner passes the session's, which already knows the schema
    vocabulary).
    """
    redactor = redactor or Redactor()
    _allow_structure(redactor, artifact)
    scrubbed = redactor.value(artifact)
    text = json.dumps(scrubbed, indent=2, sort_keys=True) + "\n"
    return text.encode("utf-8")


def load_artifact(path: str) -> dict:
    """Read one artifact back, refusing foreign or future JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    if not isinstance(artifact, dict) or artifact.get("kind") != KIND:
        raise ValueError(f"{path}: not a {KIND} artifact")
    version = artifact.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: artifact schema_version {version!r}, "
            f"this tool speaks {SCHEMA_VERSION}"
        )
    return artifact
