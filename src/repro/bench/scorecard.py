"""The T9 estimate-quality scorecard: cost model vs simulator.

For every query family the engine supports, every Pre/Post strategy is
executed and its measured simulated time compared with the cost model's
estimate for the very plan that ran.  The per-family summary is the T9
table of the benchmark suite, written into the bench artifact; every
per-candidate est/meas ratio is also fed into the session's
``ghostdb_optimizer_est_over_meas`` histogram so the exposition shows
the distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.optimizer.explain import MISESTIMATE_THRESHOLD
from repro.optimizer.space import enumerate_strategies
from repro.workload.queries import QUERY_FAMILIES

#: Measurements below this are treated as free (no meaningful ratio).
_MIN_MEASURABLE_S = 1e-9


@dataclass
class FamilyScore:
    """Estimate quality over one query family's candidate plans."""

    family: str
    candidates: int
    est_over_meas_min: float
    est_over_meas_max: float
    est_over_meas_geomean: float
    #: Measured time of the optimizer's pick over the best candidate's
    #: (1.0 means the optimizer chose the fastest plan).
    chosen_vs_best: float
    #: Candidates whose ratio falls outside the misestimate threshold.
    misestimates: int

    def as_dict(self) -> dict:
        return {
            "candidates": self.candidates,
            "est_over_meas_min": self.est_over_meas_min,
            "est_over_meas_max": self.est_over_meas_max,
            "est_over_meas_geomean": self.est_over_meas_geomean,
            "chosen_vs_best": self.chosen_vs_best,
            "misestimates": self.misestimates,
        }


def _geomean(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1 / max(1, len(values)))


def score_family(session, sql: str, family: str) -> tuple[FamilyScore, list]:
    """Grade one family; returns its score and the raw ratios."""
    bound = session.bind(sql)
    measured: list[float] = []
    estimated: list[float] = []
    ratios: list[float] = []
    for strategy in enumerate_strategies(bound):
        session.reset_measurements()
        result = session.query_with_strategy(sql, strategy)
        seconds = result.metrics.elapsed_seconds
        estimate = session.optimizer.cost_model.estimate(result.plan).seconds
        measured.append(seconds)
        estimated.append(estimate)
        if seconds > _MIN_MEASURABLE_S:
            ratios.append(estimate / seconds)
    best = min(measured)
    chosen = estimated.index(min(estimated))
    chosen_vs_best = (
        measured[chosen] / best if best > _MIN_MEASURABLE_S else 1.0
    )
    score = FamilyScore(
        family=family,
        candidates=len(measured),
        est_over_meas_min=min(ratios, default=1.0),
        est_over_meas_max=max(ratios, default=1.0),
        est_over_meas_geomean=_geomean(ratios),
        chosen_vs_best=chosen_vs_best,
        misestimates=sum(
            1
            for ratio in ratios
            if not (
                1 / MISESTIMATE_THRESHOLD
                <= ratio
                <= MISESTIMATE_THRESHOLD
            )
        ),
    )
    return score, ratios


def build_scorecard(session, families: dict[str, str] | None = None) -> dict:
    """The full per-family scorecard as an artifact-ready dict.

    Executes every candidate strategy of every family (resetting the
    measurement state around each), then -- after the *last* reset, so
    the values survive -- feeds every est/meas ratio into the session's
    ``ghostdb_optimizer_est_over_meas`` histogram.
    """
    families = families if families is not None else QUERY_FAMILIES
    card: dict[str, dict] = {}
    all_ratios: list[float] = []
    for name in sorted(families):
        score, ratios = score_family(session, families[name], name)
        card[name] = score.as_dict()
        all_ratios.extend(ratios)
    histogram = session.obs.registry.histogram(
        "ghostdb_optimizer_est_over_meas"
    )
    for ratio in all_ratios:
        histogram.observe(ratio)
    return card


def render_scorecard(card: dict) -> str:
    """The scorecard as an aligned text table (the ``.bench`` view)."""
    header = (
        f"{'family':<22} {'cands':>5} {'est/meas range':>16} "
        f"{'geomean':>8} {'chosen/best':>11} {'misest':>6}"
    )
    lines = [header]
    for name in sorted(card):
        row = card[name]
        lines.append(
            f"{name:<22} {row['candidates']:>5} "
            f"{row['est_over_meas_min']:>7.2f}-"
            f"{row['est_over_meas_max']:<8.2f} "
            f"{row['est_over_meas_geomean']:>8.2f} "
            f"{row['chosen_vs_best']:>10.2f}x "
            f"{row['misestimates']:>6}"
        )
    return "\n".join(lines)
