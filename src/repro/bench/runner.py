"""The bench runner: ``python -m repro bench``.

Builds a fresh session at a fixed scale, executes every registered
scenario once (resetting the measurement state around each), grades the
optimizer with the T9 scorecard, and writes one redacted, leak-checked
``BENCH_<date>.json`` artifact.  With ``--baseline`` it additionally
diffs the run against a committed artifact and exits nonzero on
regression -- the CI gate.
"""

from __future__ import annotations

import argparse
import datetime
import os
import time
from dataclasses import dataclass, field

from repro.bench.artifact import build_artifact, scenario_record, to_payload
from repro.bench.compare import (
    DEFAULT_TOLERANCE,
    compare_artifacts,
    load_artifact,
)
from repro.bench.scenarios import select_scenarios
from repro.bench.scorecard import build_scorecard, render_scorecard
from repro.core.factory import build_session
from repro.hardware.profiles import PROFILES
from repro.obs import get_logger
from repro.privacy.leakcheck import LeakChecker
from repro.privacy.meter import profile_records

log = get_logger(__name__)

#: Default dataset size: small enough for a sub-minute CI run, large
#: enough that every crossover the scenarios exercise has happened.
DEFAULT_SCALE = 2000


class BenchError(RuntimeError):
    """A bench run could not produce a trustworthy artifact."""


@dataclass
class BenchConfig:
    """One bench run's knobs."""

    scale: int = DEFAULT_SCALE
    profile: str = "demo"
    #: Exact scenario names to run; ``None`` runs the full registry.
    scenario_names: list[str] | None = None
    #: Skip the (comparatively slow) estimate-quality scorecard.
    scorecard: bool = True


@dataclass
class BenchRun:
    """A finished run: the artifact plus its vetted serialization."""

    artifact: dict
    #: Redacted JSON bytes, already verified CLEAN by the leak checker.
    payload: bytes
    leak_summary: str
    lines: list[str] = field(default_factory=list)

    def write(self, path: str) -> None:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(self.payload)


def default_artifact_name(
    today: datetime.date | None = None,
) -> str:
    today = today or datetime.date.today()
    return f"BENCH_{today.strftime('%Y%m%d')}.json"


def recorder_overhead(
    total_events: int, total_wall: float, samples: int = 20_000
) -> dict:
    """Measure the flight recorder's host cost and estimate its share
    of the run's scenario wall time.

    The per-event cost is microbenchmarked on a fresh full ring (so
    every sample pays the worst case: eviction plus append) with a
    representative payload, then multiplied by the events the run
    actually journalled.  The comparator fails a run whose estimated
    fraction reaches 5% of host wall.
    """
    from repro.obs.flight import FlightRecorder

    probe = FlightRecorder(capacity=1024, clock=None)
    for _ in range(1024):
        probe.record("warmup", query=0, fingerprint=0)
    start = time.perf_counter()
    for i in range(samples):
        probe.record("query_end", query=i, fingerprint=2531329251, rows=13)
    per_event = (time.perf_counter() - start) / samples
    overhead = per_event * total_events
    return {
        "total_events": total_events,
        "per_event_seconds": per_event,
        "overhead_seconds_est": overhead,
        "overhead_fraction": overhead / total_wall if total_wall > 0 else 0.0,
    }


def run_bench(config: BenchConfig | None = None) -> BenchRun:
    """Execute one full bench run; see the module docstring."""
    config = config or BenchConfig()
    if config.profile not in PROFILES:
        raise BenchError(
            f"unknown profile {config.profile!r}; "
            f"known: {', '.join(sorted(PROFILES))}"
        )
    scenarios = select_scenarios(config.scenario_names)
    log.info(
        "bench run: %d scenarios at scale %d on %s",
        len(scenarios), config.scale, config.profile,
    )
    session, data = build_session(
        profile=config.profile, scale=config.scale
    )

    lines: list[str] = []
    records: dict[str, dict] = {}
    total_wall = 0.0
    total_events = 0
    for scenario in scenarios:
        session.reset_measurements()
        events_before = session.obs.flight.total_recorded
        wall_start = time.perf_counter()
        result = scenario.run(session)
        wall = time.perf_counter() - wall_start
        events = session.obs.flight.total_recorded - events_before
        total_wall += wall
        total_events += events
        # Everything the scenario pushed over the boundary, faults and
        # retransmissions included -- the spy's complete view of it.
        traffic = session.usb_log
        leak = profile_records(traffic) if traffic else None
        records[scenario.name] = scenario_record(
            result.metrics, wall, scenario.family, leak=leak,
            flight_events=events,
            extra=getattr(result, "bench_extra", None),
        )
        lines.append(
            f"{scenario.name:<24} "
            f"{result.metrics.elapsed_seconds * 1e3:9.2f} ms sim  "
            f"{result.metrics.flash_page_reads:6d} fr "
            f"{result.metrics.flash_page_writes:5d} fw  "
            f"{result.metrics.usb_messages:5d} usb  "
            f"{result.metrics.cache_hits:4d} hit  "
            f"{result.metrics.ram_high_water:6d} B ram  "
            f"leak {leak.observable_bytes if leak else 0:6d} B "
            f"sig {leak.signature if leak else '--------'}  "
            f"({wall * 1e3:.0f} ms wall)"
        )

    card = build_scorecard(session) if config.scorecard else {}

    recorder = recorder_overhead(total_events, total_wall)
    lines.append(
        f"recorder overhead: {recorder['total_events']} events x "
        f"{recorder['per_event_seconds'] * 1e9:.0f} ns = "
        f"{recorder['overhead_fraction'] * 100:.3f}% of "
        f"{total_wall:.2f}s scenario wall (budget < 5%)"
    )

    artifact = build_artifact(
        scale=config.scale,
        profile=config.profile,
        created=datetime.datetime.now().isoformat(timespec="seconds"),
        scenarios=records,
        scorecard=card,
        recorder=recorder,
    )
    payload = to_payload(artifact, session.obs.redactor)
    checker = LeakChecker(session.schema, data)
    leak = checker.check_bytes(payload, kind="bench-artifact")
    if not leak.ok:
        raise BenchError(f"artifact failed leak check: {leak.summary()}")
    return BenchRun(
        artifact=artifact,
        payload=payload,
        leak_summary=leak.summary(),
        lines=lines,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="run the GhostDB figure/table scenarios and write a "
        "schema-versioned benchmark artifact",
    )
    parser.add_argument(
        "--scale", type=int, default=DEFAULT_SCALE,
        help=f"prescriptions in the dataset (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="demo",
        help="hardware profile of the simulated device",
    )
    parser.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="run only this scenario (repeatable)",
    )
    parser.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="artifact path (default BENCH_<date>.json in the cwd)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="compare against this committed artifact and exit nonzero "
        "on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="relative headroom before a gated metric regresses "
        f"(default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--no-scorecard", action="store_true",
        help="skip the optimizer estimate-quality scorecard",
    )
    args = parser.parse_args(argv)

    try:
        run = run_bench(BenchConfig(
            scale=args.scale,
            profile=args.profile,
            scenario_names=args.scenario,
            scorecard=not args.no_scorecard,
        ))
    except (BenchError, KeyError) as exc:
        print(f"error: {exc}")
        return 2

    for line in run.lines:
        print(line)
    if run.artifact["scorecard"]:
        print()
        print(render_scorecard(run.artifact["scorecard"]))
    print()
    print(run.leak_summary)

    out_path = args.bench_out or default_artifact_name()
    try:
        run.write(out_path)
    except OSError as exc:
        print(f"error: could not write artifact: {exc}")
        return 2
    print(f"wrote {out_path} ({len(run.payload)} bytes)")

    if args.baseline:
        try:
            baseline = load_artifact(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: could not read baseline: {exc}")
            return 2
        report = compare_artifacts(
            baseline, run.artifact, tolerance=args.tolerance
        )
        print()
        print(report.render())
        return 0 if report.ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
