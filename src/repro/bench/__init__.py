"""Benchmark regression harness: runner, comparator, scorecard.

The benchmark suite under ``benchmarks/`` reproduces the paper's figures
and tables interactively; this package makes the same measurements a
*regression instrument*:

* :mod:`repro.bench.scenarios` -- the figure/table points as named,
  single-execution scenarios over a loaded session;
* :mod:`repro.bench.runner` -- ``python -m repro bench``: runs every
  scenario, writes one schema-versioned, redacted, leak-checked
  ``BENCH_<date>.json`` artifact;
* :mod:`repro.bench.artifact` -- the artifact layout, its redaction
  gate and the list of gated (deterministic) metrics;
* :mod:`repro.bench.compare` -- diffs a run against the committed
  ``benchmarks/baseline.json`` and fails on cost regressions;
* :mod:`repro.bench.scorecard` -- the T9 estimate-quality table
  (est/meas ratio per candidate plan, per query family), also fed into
  the ``ghostdb_optimizer_est_over_meas`` histogram.

Simulated-device metrics are deterministic, so the comparator can gate
*exactly*: an unchanged tree reproduces the baseline bit-for-bit, and
any drift is a real cost change.  Host wall time is recorded for
context but never gated.
"""

from repro.bench.artifact import (
    GATED_METRICS,
    KIND,
    SCHEMA_VERSION,
    build_artifact,
    load_artifact,
    scenario_record,
    to_payload,
)
from repro.bench.compare import (
    ComparisonReport,
    MetricDelta,
    compare_artifacts,
)
from repro.bench.runner import BenchConfig, BenchError, BenchRun, run_bench
from repro.bench.scenarios import SCENARIOS, Scenario, select_scenarios
from repro.bench.scorecard import (
    MISESTIMATE_THRESHOLD,
    FamilyScore,
    build_scorecard,
    render_scorecard,
    score_family,
)

__all__ = [
    "GATED_METRICS",
    "KIND",
    "MISESTIMATE_THRESHOLD",
    "SCENARIOS",
    "SCHEMA_VERSION",
    "BenchConfig",
    "BenchError",
    "BenchRun",
    "ComparisonReport",
    "FamilyScore",
    "MetricDelta",
    "Scenario",
    "build_artifact",
    "build_scorecard",
    "compare_artifacts",
    "load_artifact",
    "render_scorecard",
    "run_bench",
    "scenario_record",
    "score_family",
    "select_scenarios",
    "to_payload",
]
