"""Deterministic sustained-DML soak harness: ``python -m repro soak``.

One soak run drives a seed-fixed mixed workload -- appends, UPDATEs,
DELETEs -- against a loaded demo-schema session under a fault profile
(``mixed`` by default: USB corruption and stalls, flash bitflips, torn
writes, grown bad blocks), for a configured number of epochs or until
the *simulated* clock has covered ``--hours`` of device time.

Every epoch ends with a full invariant audit:

* **reference** -- the device rows of every table, read back off flash,
  equal an independently maintained host-side reference model, and the
  visible site's row counts agree;
* **queries**   -- a fixed battery of SELECTs (join, selection,
  aggregate) answers exactly what the brute-force reference evaluator
  answers over the reference rows;
* **leak**      -- the epoch's captured USB traffic is CLEAN under the
  adversarial leak checker (rebuilt each epoch, so hidden values
  *introduced by the workload itself* are part of the corpus);
* **ram**       -- the device RAM budget is fully released (nothing but
  reclaimable buffer-pool memory remains reserved);
* **ftl_map**   -- after a remount (recovery scan + orphan sweep) the
  FTL's mapped pages are exactly the catalog's referenced pages.

Everything about a run is a deterministic function of its seed: the
workload (one ``random.Random``), the fault schedule (the injector's own
seed), the simulated clock, and therefore the whole ``SOAK_<seed>.json``
artifact -- replaying a seed must produce bit-identical bytes.  The
artifact passes the default-deny redaction gate and is verified CLEAN by
the leak checker before it is written; host wall time never appears in
it.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import random
from dataclasses import dataclass

from repro.bench.artifact import to_payload
from repro.core.factory import build_session
from repro.core.ghostdb import GhostDB
from repro.faults import FAULT_PROFILES, GhostDBFaultError
from repro.obs import get_logger
from repro.privacy.leakcheck import LeakChecker
from repro.reference import evaluate_reference, same_rows
from repro.sql import ast
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement

log = get_logger(__name__)

#: Artifact discriminator + layout version (see :mod:`repro.bench.artifact`
#: for the convention).
KIND = "ghostdb-soak"
SCHEMA_VERSION = 1

#: Attempts a faulted statement gets before the run is declared broken.
#: Schedules are seed-fixed, so a given run needs the same attempts on
#: every replay.
MAX_ATTEMPTS = 8

#: Epoch ceiling for ``--hours`` runs: a misconfigured target must fail
#: loudly instead of looping forever.
MAX_EPOCHS = 100_000

#: Keep at least this many prescriptions alive; below it the generator
#: forces an insert so deletes can never drain the workload's table.
MIN_PRESCRIPTIONS = 8

#: Visible CHAR(20) values the workload writes (never hidden data).
FREQUENCIES = ("1x daily", "2x daily", "3x daily", "as needed")

#: The epoch verification battery: join, hidden selection, visible
#: selection, and a grouped aggregate -- each answered twice, once by the
#: engine and once by the brute-force reference evaluator.
CHECK_QUERIES = (
    "SELECT Patient.Name, Quantity FROM Patient, Visit, Prescription "
    "WHERE Patient.PatID = Visit.PatID "
    "AND Visit.VisID = Prescription.VisID AND Quantity > 5",
    "SELECT PreID, Quantity FROM Prescription WHERE Quantity <= 6",
    "SELECT Age FROM Patient WHERE Age > 40",
    "SELECT Vis.Purpose, count(*) FROM Prescription Pre, Visit Vis "
    "WHERE Vis.VisID = Pre.VisID GROUP BY Vis.Purpose",
)


class SoakError(RuntimeError):
    """A soak run could not complete or produce a trustworthy artifact."""


@dataclass
class SoakConfig:
    """One soak run's knobs.  Everything here keys the artifact."""

    seed: int = 0
    #: Epochs to run (each = ``ops_per_epoch`` mutations + a full audit).
    epochs: int = 4
    ops_per_epoch: int = 12
    #: Prescriptions in the starting dataset.
    scale: int = 120
    #: Fault profile name, or ``None``/"none" for a clean run.
    fault_profile: str | None = "mixed"
    #: Optional simulated-hours target: keep cycling epochs until the
    #: device clock has covered this much simulated time.
    sim_hours: float | None = None

    def __post_init__(self) -> None:
        if self.fault_profile in ("none", ""):
            self.fault_profile = None
        if self.fault_profile is not None and (
            self.fault_profile not in FAULT_PROFILES
        ):
            known = ", ".join(sorted(FAULT_PROFILES))
            raise SoakError(
                f"unknown fault profile {self.fault_profile!r}; "
                f"known: {known}"
            )


@dataclass
class SoakRun:
    """A finished run: the report plus its vetted serialization."""

    report: dict
    #: Redacted JSON bytes, already verified CLEAN by the leak checker.
    payload: bytes
    leak_summary: str

    @property
    def violations(self) -> list[dict]:
        return self.report["violations"]

    @property
    def ok(self) -> bool:
        return not self.violations

    def write(self, directory: str = ".") -> str:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(
            directory, f"SOAK_{self.report['config']['seed']}.json"
        )
        with open(path, "wb") as handle:
            handle.write(self.payload)
        return path


# ----------------------------------------------------------------------
# Host-side reference model
# ----------------------------------------------------------------------


def apply_dml_reference(tree, rows_by_table: dict[str, list], sql: str) -> None:
    """Apply one UPDATE/DELETE to the reference rows, in place.

    Independent of the engine's execution path: the statement is bound
    only for column resolution, then predicates and assignments are
    evaluated over plain host tuples.
    """
    statement = parse_statement(sql)
    binder = Binder(tree)
    if isinstance(statement, ast.Update):
        bound = binder.bind_update(statement)
        idx = {
            c.name.lower(): i
            for i, c in enumerate(bound.table_def.columns)
        }
        out = []
        for row in rows_by_table[bound.table]:
            if all(p.matches(row[idx[p.column]]) for p in bound.predicates):
                new = list(row)
                for a in bound.assignments:
                    new[idx[a.column.name.lower()]] = (
                        a.column.dtype.validate(a.value)
                    )
                out.append(tuple(new))
            else:
                out.append(row)
        rows_by_table[bound.table] = out
    elif isinstance(statement, ast.Delete):
        bound = binder.bind_delete(statement)
        idx = {
            c.name.lower(): i
            for i, c in enumerate(bound.table_def.columns)
        }
        rows_by_table[bound.table] = [
            row
            for row in rows_by_table[bound.table]
            if not all(
                p.matches(row[idx[p.column]]) for p in bound.predicates
            )
        ]
    else:  # pragma: no cover - the generator only emits DML
        raise SoakError(f"not a DML statement: {sql!r}")


def expected_device_rows(tree, rows_by_table, table: str) -> list[tuple]:
    """The device heap's expected contents: device columns, PK order."""
    tdef = tree.table(table)
    idx = [tdef.column_index(c.name) for c in tdef.device_columns()]
    return sorted(
        (tuple(row[i] for i in idx) for row in rows_by_table[table]),
        key=lambda r: r[0],
    )


# ----------------------------------------------------------------------
# Workload generation (a pure function of the rng + reference state)
# ----------------------------------------------------------------------


def _gen_insert(rng: random.Random, ref: dict, state: dict) -> list[tuple]:
    """A batch of fresh prescriptions with monotonically new PKs."""
    meds = sorted(r[0] for r in ref["medicine"])
    visits = sorted(r[0] for r in ref["visit"])
    rows = []
    for _ in range(rng.randint(1, 4)):
        state["next_pk"] += 1
        rows.append(
            (
                state["next_pk"],
                rng.randint(1, 12),
                rng.choice(FREQUENCIES),
                datetime.date(2026, rng.randint(1, 12), rng.randint(1, 28)),
                rng.choice(meds),
                rng.choice(visits),
            )
        )
    return rows


def _gen_update(rng: random.Random, ref: dict) -> str:
    pres_pks = sorted(r[0] for r in ref["prescription"])
    pat_pks = sorted(r[0] for r in ref["patient"])
    which = rng.randrange(4)
    if which == 0:  # hidden int, value-matched
        return (
            f"UPDATE Prescription SET Quantity = {rng.randint(1, 12)} "
            f"WHERE Quantity = {rng.randint(1, 12)}"
        )
    if which == 1:  # visible CHAR over a PK range
        return (
            f"UPDATE Prescription SET Frequency = "
            f"'{rng.choice(FREQUENCIES)}' "
            f"WHERE PreID <= {rng.choice(pres_pks)}"
        )
    if which == 2:  # visible int, single row
        return (
            f"UPDATE Patient SET Age = {rng.randint(18, 95)} "
            f"WHERE PatID = {rng.choice(pat_pks)}"
        )
    # hidden float + visible int, multi-assignment
    return (
        f"UPDATE Patient SET BodyMassIndex = {rng.randint(150, 400) / 10}, "
        f"Age = {rng.randint(18, 95)} "
        f"WHERE PatID = {rng.choice(pat_pks)}"
    )


def _gen_delete(rng: random.Random, ref: dict) -> str:
    pks = sorted(r[0] for r in ref["prescription"])
    if rng.random() < 0.5:
        chosen = sorted(rng.sample(pks, min(3, len(pks))))
        return (
            f"DELETE FROM Prescription "
            f"WHERE PreID IN ({', '.join(map(str, chosen))})"
        )
    return (
        f"DELETE FROM Prescription WHERE Quantity = {rng.randint(1, 12)} "
        f"AND PreID > {rng.choice(pks)}"
    )


# ----------------------------------------------------------------------
# The run
# ----------------------------------------------------------------------


def _with_retries(db: GhostDB, fn, tally: dict):
    """Run ``fn`` to completion under faults.

    Every DML statement and append is atomic (build-all-then-swap), so a
    faulted attempt left the device on the old version and a plain
    re-execution is safe.  Remounts happen inside the loop so a recovery
    scan that itself faults is retried too.
    """
    last: Exception | None = None
    for _ in range(MAX_ATTEMPTS):
        try:
            if db.needs_remount:
                db.remount()
            return fn()
        except GhostDBFaultError as exc:
            last = exc
            tally["retries"] += 1
    raise SoakError(
        f"statement kept faulting after {MAX_ATTEMPTS} attempts: {last}"
    )


def _audit_epoch(
    db: GhostDB,
    ref: dict,
    epoch: int,
    usb_mark: int,
    tally: dict,
    violations: list[dict],
) -> dict:
    """The end-of-epoch invariant battery; returns per-invariant status."""

    def flag(invariant: str, detail: str) -> None:
        violations.append(
            {"epoch": epoch, "invariant": invariant, "detail": detail}
        )

    status = {}

    # Reference: device rows + site counts vs the host-side model.
    reference_ok = True
    for table in ("prescription", "patient", "visit", "medicine"):
        got = _with_retries(
            db, lambda t=table: list(db.hidden.heaps[t].scan()), tally
        )
        want = expected_device_rows(db.tree, ref, table)
        if got != want:
            reference_ok = False
            flag(
                "reference",
                f"device rows of {table} diverged "
                f"({len(got)} vs {len(want)} rows)",
            )
        if db.site.row_count(table) != len(ref[table]):
            reference_ok = False
            flag(
                "reference",
                f"site row count of {table} diverged "
                f"({db.site.row_count(table)} vs {len(ref[table])})",
            )
    status["reference"] = "ok" if reference_ok else "violated"

    # Queries: the engine vs the brute-force evaluator.
    queries_ok = True
    for q, sql in enumerate(CHECK_QUERIES):
        result = _with_retries(db, lambda s=sql: db.query(s), tally)
        expected = evaluate_reference(db.tree, ref, db.bind(sql))
        if not same_rows(result.rows, expected):
            queries_ok = False
            flag(
                "queries",
                f"check query {q} diverged from the reference "
                f"({result.row_count} vs {len(expected)} rows)",
            )
    status["queries"] = "ok" if queries_ok else "violated"

    # Leak: this epoch's boundary traffic, checked against a corpus that
    # includes every hidden value the workload itself has written.
    checker = LeakChecker(db.schema, ref)
    leak = checker.check(db.usb_log[usb_mark:])
    if not leak.ok:
        flag("leak", leak.summary())
    status["leak"] = "CLEAN" if leak.ok else "violated"

    # RAM: nothing but reclaimable buffer-pool memory may stay reserved.
    ram = db.device.ram
    if ram.used != ram.reclaimable_used:
        flag(
            "ram",
            f"{ram.used - ram.reclaimable_used} B still reserved "
            f"after the epoch's statements finished",
        )
    status["ram"] = "ok" if ram.used == ram.reclaimable_used else "violated"

    # FTL map: a remount's recovery scan + orphan sweep must land on
    # exactly the catalog's referenced pages.
    _with_retries(db, db.remount, tally)
    mapped = db.device.ftl.mapped_lpages()
    referenced = db.hidden.referenced_pages()
    if mapped != referenced:
        flag(
            "ftl_map",
            f"FTL maps {len(mapped)} pages, catalog references "
            f"{len(referenced)} after remount",
        )
    status["ftl_map"] = "ok" if mapped == referenced else "violated"
    return status


def run_soak(config: SoakConfig | None = None) -> SoakRun:
    """Execute one full soak run; see the module docstring."""
    config = config or SoakConfig()
    rng = random.Random(config.seed)

    db, data = build_session(scale=config.scale)
    injector = None
    if config.fault_profile is not None:
        # Not routed through build_session: soak attaches even
        # zero-rate profiles so it can schedule its own power cuts.
        injector = db.set_faults(config.fault_profile, seed=config.seed)

    ref = {name: list(rows) for name, rows in data.items()}
    state = {"next_pk": max(r[0] for r in ref["prescription"])}
    counters = db.obs.registry
    violations: list[dict] = []
    epoch_records: list[dict] = []
    log.info(
        "soak run: seed %d, %d ops/epoch at scale %d under %s faults",
        config.seed, config.ops_per_epoch, config.scale,
        config.fault_profile or "no",
    )

    epoch = 0
    while epoch < config.epochs or (
        config.sim_hours is not None
        and db.device.clock.now < config.sim_hours * 3600.0
    ):
        if epoch >= MAX_EPOCHS:
            raise SoakError(
                f"simulated-hours target unreachable within "
                f"{MAX_EPOCHS} epochs"
            )
        usb_mark = len(db.usb_log)
        fault_mark = len(injector.events) if injector else 0
        tally = {"retries": 0}
        ops = {"insert": 0, "update": 0, "delete": 0}
        appended = 0
        for _ in range(config.ops_per_epoch):
            if len(ref["prescription"]) < MIN_PRESCRIPTIONS:
                kind = "insert"
            else:
                draw = rng.random()
                kind = (
                    "insert" if draw < 0.30
                    else "update" if draw < 0.75
                    else "delete"
                )
            ops[kind] += 1
            if kind == "insert":
                rows = _gen_insert(rng, ref, state)
                _with_retries(
                    db, lambda r=rows: db.append("prescription", r), tally
                )
                ref["prescription"].extend(rows)
                appended += len(rows)
            else:
                sql = (
                    _gen_update(rng, ref) if kind == "update"
                    else _gen_delete(rng, ref)
                )
                _with_retries(db, lambda s=sql: db.execute(s), tally)
                apply_dml_reference(db.tree, ref, sql)

        status = _audit_epoch(db, ref, epoch, usb_mark, tally, violations)
        flash = db.device.flash
        epoch_records.append(
            {
                "epoch": epoch,
                "ops": ops,
                "rows_appended": appended,
                "rows": {t: len(ref[t]) for t in sorted(ref)},
                "retries": tally["retries"],
                # Faults the injector actually fired this epoch; most
                # are absorbed below the session surface (ECC-corrected
                # bitflips, transparent USB retransmissions) -- the
                # point of the soak is that absorption never bends an
                # invariant.
                "faults_injected": (
                    len(injector.events) - fault_mark if injector else 0
                ),
                "sim_seconds": round(db.device.clock.now, 9),
                "flash_writes": counters.counter(
                    "ghostdb_device_flash_writes_total"
                ).total(),
                "flash_erases": counters.counter(
                    "ghostdb_device_flash_erases_total"
                ).total(),
                "wear": {
                    "max_erase_cycles": flash.max_wear,
                    "bad_blocks": flash.bad_block_count,
                    "read_only": db.device.ftl.read_only,
                },
                "invariants": status,
            }
        )
        epoch += 1

    report = {
        "kind": KIND,
        "schema_version": SCHEMA_VERSION,
        "config": {
            "seed": config.seed,
            "epochs": epoch,
            "ops_per_epoch": config.ops_per_epoch,
            "scale": config.scale,
            "fault_profile": config.fault_profile or "none",
            "sim_hours": config.sim_hours,
        },
        "epochs_run": epoch_records,
        "final": {
            "sim_hours": round(db.device.clock.now / 3600.0, 9),
            "total_queries": db.obs.ledger.total_queries,
            "aborted_queries": db.obs.ledger.aborted_queries,
            "flight_events": db.obs.flight.total_recorded,
            "rows": {t: len(ref[t]) for t in sorted(ref)},
        },
        "violations": violations,
        "leak_check": "CLEAN",
    }

    # The artifact is an observable execution artefact: it passes the
    # default-deny redaction gate, then the adversarial leak checker
    # (with the *final* hidden corpus) must call the bytes CLEAN.
    redactor = db.obs.redactor
    redactor.allow(
        KIND, "ok", "violated", "CLEAN",
        report["config"]["fault_profile"],
    )
    for violation in violations:
        redactor.allow(violation["invariant"])
    payload = to_payload(report, redactor)
    checker = LeakChecker(db.schema, ref)
    leak = checker.check_bytes(payload, kind="soak-artifact")
    if not leak.ok:
        raise SoakError(f"artifact failed leak check: {leak.summary()}")
    return SoakRun(
        report=report, payload=payload, leak_summary=leak.summary()
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro soak",
        description="run the deterministic sustained-DML soak harness "
        "and write a leak-checked SOAK_<seed>.json artifact",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload + fault schedule seed (default 0)",
    )
    parser.add_argument(
        "--epochs", type=int, default=4,
        help="epochs to run; each ends with a full invariant audit "
        "(default 4)",
    )
    parser.add_argument(
        "--ops", type=int, default=12, metavar="N",
        help="mutations per epoch (default 12)",
    )
    parser.add_argument(
        "--scale", type=int, default=120,
        help="prescriptions in the starting dataset (default 120)",
    )
    parser.add_argument(
        "--faults", default="mixed", metavar="PROFILE",
        help="fault profile for the whole run (default mixed; "
        "'none' for a clean run)",
    )
    parser.add_argument(
        "--hours", type=float, default=None, metavar="H",
        help="keep cycling epochs until the simulated clock covers "
        "H hours",
    )
    parser.add_argument(
        "--out-dir", default=".", metavar="DIR",
        help="directory for the SOAK_<seed>.json artifact (default .)",
    )
    args = parser.parse_args(argv)

    try:
        run = run_soak(SoakConfig(
            seed=args.seed,
            epochs=args.epochs,
            ops_per_epoch=args.ops,
            scale=args.scale,
            fault_profile=args.faults,
            sim_hours=args.hours,
        ))
    except SoakError as exc:
        print(f"error: {exc}")
        return 2

    for record in run.report["epochs_run"]:
        invariants = " ".join(
            f"{name}={value}"
            for name, value in sorted(record["invariants"].items())
        )
        print(
            f"epoch {record['epoch']:3d}  "
            f"ins {record['ops']['insert']:2d} "
            f"upd {record['ops']['update']:2d} "
            f"del {record['ops']['delete']:2d}  "
            f"faults {record['faults_injected']:3d}  "
            f"retries {record['retries']:2d}  "
            f"wear {record['wear']['max_erase_cycles']:3d}  "
            f"{invariants}"
        )
    print(run.leak_summary)

    try:
        path = run.write(args.out_dir)
    except OSError as exc:
        print(f"error: could not write artifact: {exc}")
        return 2
    print(f"wrote {path} ({len(run.payload)} bytes)")

    if not run.ok:
        print(f"soak: {len(run.violations)} INVARIANT VIOLATIONS")
        return 1
    print("soak: all invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
