"""GhostDB reproduction: hiding data from prying eyes.

A faithful, simulator-backed reimplementation of GhostDB (Salperwyck,
Anciaux, Benzine, Bouganim, Pucheral, Shasha -- VLDB 2007): a relational
database split between an untrusted visible side and a tamper-resistant
smart USB device holding the hidden columns, with Subtree Key Tables,
climbing indexes, Bloom-filter post-filtering and a Pre/Post/Cross-
filtering optimizer.

Quickstart::

    from repro import GhostDB
    from repro.workload import DEMO_SCHEMA_DDL, MedicalDataGenerator, demo_query

    db = GhostDB()
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    db.load(MedicalDataGenerator().generate())
    result = db.query(demo_query())
    print(result.rows)
    print(result.metrics.report())
"""

from repro.core.ghostdb import GhostDB, SessionConfig
from repro.engine.executor import ExecConfig, QueryResult
from repro.hardware.profiles import (
    DEMO_DEVICE,
    HARSH_FLASH_DEVICE,
    HIGH_SPEED_DEVICE,
    TINY_DEVICE,
    HardwareProfile,
)

__version__ = "1.0.0"

__all__ = [
    "DEMO_DEVICE",
    "ExecConfig",
    "GhostDB",
    "HARSH_FLASH_DEVICE",
    "HIGH_SPEED_DEVICE",
    "HardwareProfile",
    "QueryResult",
    "SessionConfig",
    "TINY_DEVICE",
    "__version__",
]
