"""Typed columnar batch payloads.

The batch protocol (:mod:`repro.engine.operators.base`) moves windows of
items between operators.  For the ID-heavy inner plans -- climbing
selections, conversions, SKT root streams -- those items are plain 32-bit
integers, and shipping them as Python lists of boxed ints makes the host
pay per-object overhead the simulated device never sees.  An
:class:`IdColumn` stores one window as a typed vector instead: a compact
``array('I')`` buffer by default, or a NumPy ``uint32`` vector when the
``GHOSTDB_NUMPY`` environment flag is set and NumPy is importable.

Two contracts keep columns drop-in for every consumer:

* A column is a sequence: ``len()``, iteration, indexing and slicing all
  work, and *iteration always yields built-in Python ints* -- a NumPy
  scalar must never leak into query results or USB payload packing.
* Columns are immutable once built.  Operators hand the same column (or
  a slice of it, which shares no mutable state) downstream without
  copying.

Batching remains purely a host-side execution detail: whether a window
travels as a list or a column must never change what the simulated
hardware does.
"""

from __future__ import annotations

import os
import sys
from array import array
from itertools import islice

#: Width of a packed ID on flash / USB, in bytes (big-endian uint32).
ID_WIDTH = 4

# ``array`` typecodes are C types, so 'I' (unsigned int) is 4 bytes on
# every mainstream platform -- but pick by itemsize, not by faith.
_TYPECODE = next(
    code for code in ("I", "L") if array(code).itemsize == ID_WIDTH
)


def _load_numpy():
    if os.environ.get("GHOSTDB_NUMPY", "") not in ("", "0"):
        try:
            import numpy
        except ImportError:
            return None
        return numpy
    return None


#: The NumPy module when the ``GHOSTDB_NUMPY`` flag selected it, else None.
NUMPY = _load_numpy()


def numpy_enabled() -> bool:
    """True when columns are NumPy-backed in this process."""
    return NUMPY is not None


class IdColumn:
    """An immutable vector of 32-bit IDs -- one columnar batch payload."""

    __slots__ = ("_data",)

    def __init__(self, data):
        self._data = data

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_ids(cls, ids) -> "IdColumn":
        """Build from an iterable of Python ints."""
        if NUMPY is not None:
            if not isinstance(ids, (list, tuple)):
                ids = list(ids)
            return cls(NUMPY.asarray(ids, dtype=NUMPY.uint32))
        return cls(array(_TYPECODE, ids))

    @classmethod
    def from_be_bytes(cls, raw: bytes, count: int, offset: int = 0) -> "IdColumn":
        """Decode ``count`` big-endian uint32 values starting at
        ``offset`` of ``raw`` -- the packed on-flash / on-wire layout."""
        view = raw[offset : offset + count * ID_WIDTH]
        if NUMPY is not None:
            return cls(
                NUMPY.frombuffer(view, dtype=">u4").astype(
                    NUMPY.uint32, copy=False
                )
            )
        ids = array(_TYPECODE)
        ids.frombytes(view)
        if sys.byteorder == "little":
            ids.byteswap()
        return cls(ids)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self):
        # NumPy iteration yields numpy scalars; tolist() round-trips to
        # built-in ints in one C call.  array('I') already yields ints.
        if NUMPY is not None:
            return iter(self._data.tolist())
        return iter(self._data)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return IdColumn(self._data[item])
        return int(self._data[item])

    def __bool__(self) -> bool:
        return len(self._data) > 0

    def __eq__(self, other) -> bool:
        if isinstance(other, IdColumn):
            other = other.tolist()
        if isinstance(other, (list, tuple)):
            return self.tolist() == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        head = ", ".join(str(v) for v in islice(self, 6))
        more = ", ..." if len(self) > 6 else ""
        return f"IdColumn([{head}{more}], n={len(self)})"

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def tolist(self) -> list[int]:
        """The column as a list of built-in Python ints."""
        if NUMPY is not None:
            return self._data.tolist()
        return self._data.tolist()

    def to_be_bytes(self) -> bytes:
        """Pack back to the big-endian wire/flash layout."""
        if NUMPY is not None:
            return self._data.astype(">u4").tobytes()
        data = self._data
        if sys.byteorder == "little":
            data = array(_TYPECODE, data)
            data.byteswap()
        return data.tobytes()


def chunk_ids(iterator, cap: int):
    """Re-chunk a per-item ID iterator into :class:`IdColumn` payloads
    of at most ``cap`` items, closing the iterator on teardown.

    The iterator is advanced in exactly the same ``islice`` pattern the
    default batch protocol uses, so the hardware-op order is identical
    to shipping plain lists.
    """
    try:
        while True:
            block = list(islice(iterator, cap))
            if not block:
                return
            yield IdColumn.from_ids(block)
    finally:
        close = getattr(iterator, "close", None)
        if close is not None:
            close()
