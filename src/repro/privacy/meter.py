"""Adversary-eye leakage metering: quantify what traffic *shape* reveals.

The :class:`~repro.privacy.leakcheck.LeakChecker` proves hidden *values*
never cross the USB boundary.  This module measures the channel that
remains: message counts, sizes, directions, ID-list cardinalities and
simulated timing -- the access-pattern side channel the oblivious-query
literature attacks (ObliDB, Oblivious Query Processing; see PAPERS.md).

Three layers:

* :func:`profile_records` turns one captured trace into a
  :class:`TrafficProfile`: per-kind histograms, ID statistics,
  inter-message simulated-time gaps, and derived scalars -- total
  observable bytes, distinct-shape entropy, and a **request-sequence
  signature** (a CRC over the logical message sequence, invariant under
  link-level retransmissions: a retried frame changes *timing*, never
  the signature).
* :class:`FingerprintClassifier` is the attack simulator: trained on
  traces from the bench query families, it re-identifies which family
  (and selectivity band) produced a fresh trace.  Its leave-one-out
  accuracy *is* the leakage number -- 1/labels means the shape reveals
  nothing, 1.0 means the spy names your query from the traffic alone.
* :func:`run_leakage_meter` runs the whole workbook on a deterministic
  session and writes a redaction-gated, LeakChecker-CLEAN
  ``LEAK_<date>.json`` scorecard; :func:`compare_leakage` diffs it
  against ``benchmarks/leakage_baseline.json`` and fails on any change
  that *widens* the channel -- the ``leakage-regression`` CI gate.

The scorecard is bit-identical across reruns: simulated traffic is
deterministic and the artifact carries no wall timestamps.
"""

from __future__ import annotations

import argparse
import datetime
import json
import math
import zlib
from dataclasses import dataclass, field

from repro.hardware.usb import Direction, TrafficRecord
from repro.privacy.spy import ID_KINDS, IdStats, SpyView
from repro.visible.frame import payload_of

#: Bump on any incompatible change to the scorecard layout.
SCHEMA_VERSION = 1

#: Artifact discriminator, so tooling can reject arbitrary JSON.
KIND = "ghostdb-leakage"

#: Fault tags marking a copy of a message that never arrived intact.
#: The link retransmits such frames, and the intact retransmission is
#: also captured, so these copies are excluded from the *logical*
#: request sequence (they still count toward observable bytes -- the
#: spy sees them).  A "stall" arrives intact, merely late, and stays.
LOST_FAULTS = frozenset({"corrupt", "truncate", "drop"})

#: The protocol's message kinds in wire order, fixing the feature layout.
KIND_ORDER = ("query", "request", "ids", "ids_end", "count", "fetch_ids", "values")

#: Outbound request verbs, fixing the feature layout.
OP_ORDER = ("select_ids", "count_ids", "fetch_values")

#: Default dataset size for the metering workbook: large enough that
#: every query family produces distinctive traffic, small enough for a
#: sub-minute CI gate.
DEFAULT_LEAK_SCALE = 1000

#: Absolute headroom the classifier accuracy may grow before the gate
#: fails (re-identification getting *easier* is a leakage regression).
ACCURACY_TOLERANCE = 0.02


class LeakMeterError(RuntimeError):
    """A metering run could not produce a trustworthy scorecard."""


# ----------------------------------------------------------------------
# Traffic-shape profiles
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GapStats:
    """Inter-message simulated-time gaps (completion-to-completion)."""

    count: int
    total_s: float
    mean_s: float
    max_s: float


@dataclass
class TrafficProfile:
    """Everything the shape of one captured trace reveals."""

    messages: int
    observable_bytes: int
    bytes_to_device: int
    bytes_to_host: int
    #: Per-kind message counts and on-the-wire byte totals.
    kind_messages: dict[str, int]
    kind_bytes: dict[str, int]
    #: Outbound request verbs, decoded from the readable JSON requests.
    request_ops: dict[str, int]
    #: ID statistics per ID-carrying kind (from :meth:`SpyView.id_stats`).
    id_stats: dict[str, IdStats]
    #: Distinct (direction, kind, size) message shapes.
    distinct_shapes: int
    #: Shannon entropy of the shape distribution, in bits.
    shape_entropy_bits: float
    #: Simulated seconds from first to last message completion.
    sim_duration_s: float
    gaps: GapStats
    #: Messages bearing a lost-in-flight fault tag (retransmitted).
    retransmissions: int
    #: CRC32 of the logical message sequence, as 8 hex digits.
    signature: str

    @property
    def signature_int(self) -> int:
        return int(self.signature, 16)

    @property
    def ids_observed(self) -> int:
        return sum(s.total for s in self.id_stats.values())

    def to_record(self) -> dict:
        """The profile as a JSON-ready dict (deterministic key order
        comes from ``json.dumps(sort_keys=True)`` at serialization)."""
        return {
            "messages": self.messages,
            "observable_bytes": self.observable_bytes,
            "bytes_to_device": self.bytes_to_device,
            "bytes_to_host": self.bytes_to_host,
            "kind_messages": dict(self.kind_messages),
            "kind_bytes": dict(self.kind_bytes),
            "request_ops": dict(self.request_ops),
            "ids_observed": self.ids_observed,
            "id_stats": {
                kind: {
                    "total": s.total,
                    "distinct": s.distinct,
                    "repeated_ratio": round(s.repeated_ratio, 6),
                }
                for kind, s in self.id_stats.items()
            },
            "distinct_shapes": self.distinct_shapes,
            "shape_entropy_bits": round(self.shape_entropy_bits, 6),
            "sim_duration_s": round(self.sim_duration_s, 9),
            "mean_gap_s": round(self.gaps.mean_s, 9),
            "max_gap_s": round(self.gaps.max_s, 9),
            "retransmissions": self.retransmissions,
            "request_signature": self.signature,
        }

    def feature_vector(self) -> tuple[float, ...]:
        """The profile as a fixed-order numeric vector (see
        :data:`FEATURE_NAMES`)."""
        features: list[float] = [
            float(self.messages),
            float(self.observable_bytes),
            float(self.bytes_to_device),
            float(self.bytes_to_host),
        ]
        for kind in KIND_ORDER:
            features.append(float(self.kind_messages.get(kind, 0)))
            features.append(float(self.kind_bytes.get(kind, 0)))
        for kind in ID_KINDS:
            stats = self.id_stats.get(kind)
            features.append(float(stats.total if stats else 0))
            features.append(float(stats.distinct if stats else 0))
            features.append(stats.repeated_ratio if stats else 0.0)
        for op in OP_ORDER:
            features.append(float(self.request_ops.get(op, 0)))
        features.append(float(self.distinct_shapes))
        features.append(self.shape_entropy_bits)
        features.append(self.sim_duration_s)
        features.append(self.gaps.mean_s)
        features.append(self.gaps.max_s)
        return tuple(features)


#: Names of :meth:`TrafficProfile.feature_vector` positions, in order.
FEATURE_NAMES: tuple[str, ...] = (
    ("messages", "observable_bytes", "bytes_to_device", "bytes_to_host")
    + tuple(
        f"{kind}_{suffix}" for kind in KIND_ORDER for suffix in ("messages", "bytes")
    )
    + tuple(
        f"{kind}_{suffix}"
        for kind in ID_KINDS
        for suffix in ("ids", "distinct_ids", "repeated_ratio")
    )
    + tuple(f"op_{op}" for op in OP_ORDER)
    + (
        "distinct_shapes",
        "shape_entropy_bits",
        "sim_duration_s",
        "mean_gap_s",
        "max_gap_s",
    )
)


def _is_lost(record: TrafficRecord) -> bool:
    return bool(LOST_FAULTS.intersection(record.faults))


def request_signature(records: list[TrafficRecord]) -> str:
    """CRC32 over the logical message sequence, as 8 hex digits.

    The sequence element for each message is direction, kind, unframed
    payload size -- plus the request verb for outbound requests, which
    the spy reads off the readable JSON.  Copies of messages that were
    mangled or dropped in flight (and therefore retransmitted) are
    excluded, so fault-injected runs produce the *same* signature as
    clean ones: retries shift timing, never the logical sequence.
    """
    parts: list[str] = []
    for record in records:
        if _is_lost(record):
            continue
        payload = payload_of(record.payload)
        element = f"{record.direction.value}:{record.kind}:{len(payload)}"
        if record.direction is Direction.TO_HOST and record.kind == "request":
            try:
                op = json.loads(payload.decode("utf-8")).get("op", "")
            except (UnicodeDecodeError, json.JSONDecodeError):
                op = ""
            element += f":{op}"
        parts.append(element)
    crc = zlib.crc32("|".join(parts).encode("utf-8"))
    return f"{crc:08x}"


def profile_records(records: list[TrafficRecord]) -> TrafficProfile:
    """Build the :class:`TrafficProfile` of one captured trace."""
    kind_messages: dict[str, int] = {}
    kind_bytes: dict[str, int] = {}
    request_ops: dict[str, int] = {}
    shapes: dict[tuple[str, str, int], int] = {}
    bytes_to_device = 0
    bytes_to_host = 0
    retransmissions = 0
    for record in records:
        kind_messages[record.kind] = kind_messages.get(record.kind, 0) + 1
        kind_bytes[record.kind] = kind_bytes.get(record.kind, 0) + record.size
        if record.direction is Direction.TO_DEVICE:
            bytes_to_device += record.size
        else:
            bytes_to_host += record.size
        if _is_lost(record):
            retransmissions += 1
        shape = (record.direction.value, record.kind, record.size)
        shapes[shape] = shapes.get(shape, 0) + 1
        if (
            record.direction is Direction.TO_HOST
            and record.kind == "request"
            and not _is_lost(record)
        ):
            try:
                op = json.loads(payload_of(record.payload).decode("utf-8")).get(
                    "op", "?"
                )
            except (UnicodeDecodeError, json.JSONDecodeError):
                op = "?"
            request_ops[op] = request_ops.get(op, 0) + 1

    total = len(records)
    entropy = 0.0
    if total:
        for count in shapes.values():
            p = count / total
            entropy -= p * math.log2(p)

    gaps = [
        later.completed_at - earlier.completed_at
        for earlier, later in zip(records, records[1:])
    ]
    gap_stats = GapStats(
        count=len(gaps),
        total_s=sum(gaps),
        mean_s=sum(gaps) / len(gaps) if gaps else 0.0,
        max_s=max(gaps) if gaps else 0.0,
    )
    duration = (
        records[-1].completed_at - records[0].completed_at if len(records) > 1 else 0.0
    )

    return TrafficProfile(
        messages=total,
        observable_bytes=bytes_to_device + bytes_to_host,
        bytes_to_device=bytes_to_device,
        bytes_to_host=bytes_to_host,
        kind_messages=kind_messages,
        kind_bytes=kind_bytes,
        request_ops=request_ops,
        id_stats=SpyView(list(records)).id_stats(),
        distinct_shapes=len(shapes),
        shape_entropy_bits=entropy,
        sim_duration_s=duration,
        gaps=gap_stats,
        retransmissions=retransmissions,
        signature=request_signature(records),
    )


def render_profile(profile: TrafficProfile) -> str:
    """The scorecard of one trace as a compact text table."""
    lines = [
        "leakage scorecard (what the traffic shape reveals):",
        f"  messages            {profile.messages}",
        f"  observable bytes    {profile.observable_bytes} "
        f"({profile.bytes_to_device} to device, "
        f"{profile.bytes_to_host} to host)",
    ]
    for kind in KIND_ORDER:
        if kind in profile.kind_messages:
            lines.append(
                f"  kind {kind:<14s} {profile.kind_messages[kind]:5d} msgs "
                f"{profile.kind_bytes[kind]:8d} B"
            )
    for op in OP_ORDER:
        if op in profile.request_ops:
            lines.append(
                f"  request op {op:<12s} x{profile.request_ops[op]}"
            )
    for kind, stats in sorted(profile.id_stats.items()):
        lines.append(
            f"  ids in {kind:<12s} {stats.total:6d} total "
            f"{stats.distinct:6d} distinct "
            f"(repeat ratio {stats.repeated_ratio:.2f})"
        )
    lines.extend(
        [
            f"  distinct shapes     {profile.distinct_shapes} "
            f"(entropy {profile.shape_entropy_bits:.3f} bits)",
            f"  sim duration        {profile.sim_duration_s * 1e3:.3f} ms "
            f"(mean gap {profile.gaps.mean_s * 1e6:.1f} us, "
            f"max {profile.gaps.max_s * 1e6:.1f} us)",
            f"  retransmissions     {profile.retransmissions}",
            f"  request signature   {profile.signature}",
        ]
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The fingerprinting attack
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LabeledTrace:
    """One training/evaluation example for the classifier."""

    label: str
    features: tuple[float, ...]


class FingerprintClassifier:
    """Nearest-centroid re-identification over traffic-shape features.

    Deliberately simple: the point is not a strong attacker but a
    *reproducible lower bound* -- if even a centroid classifier names
    the query family from the traffic, the channel is real.  Features
    are z-normalized with statistics from the training set; ties break
    toward the lexicographically first label so results are stable.
    """

    def __init__(self, training: list[LabeledTrace]):
        if not training:
            raise LeakMeterError("classifier needs at least one trace")
        width = len(training[0].features)
        self._means = [0.0] * width
        self._stds = [0.0] * width
        n = len(training)
        for i in range(width):
            column = [t.features[i] for t in training]
            mean = sum(column) / n
            self._means[i] = mean
            self._stds[i] = math.sqrt(
                sum((v - mean) ** 2 for v in column) / n
            )
        by_label: dict[str, list[tuple[float, ...]]] = {}
        for trace in training:
            by_label.setdefault(trace.label, []).append(
                self._normalize(trace.features)
            )
        self.centroids: dict[str, tuple[float, ...]] = {
            label: tuple(
                sum(vec[i] for vec in vectors) / len(vectors)
                for i in range(width)
            )
            for label, vectors in by_label.items()
        }

    def _normalize(self, features: tuple[float, ...]) -> tuple[float, ...]:
        return tuple(
            (v - m) / s if s > 0 else 0.0
            for v, m, s in zip(features, self._means, self._stds)
        )

    def classify(self, features: tuple[float, ...]) -> str:
        vector = self._normalize(features)
        best_label, best_distance = "", math.inf
        for label in sorted(self.centroids):
            centroid = self.centroids[label]
            distance = sum((a - b) ** 2 for a, b in zip(vector, centroid))
            if distance < best_distance:
                best_label, best_distance = label, distance
        return best_label


def evaluate_fingerprinting(traces: list[LabeledTrace]) -> dict:
    """Leave-one-out accuracy of the attack over ``traces``.

    Returns a JSON-ready dict: overall and per-label accuracy, the
    confusion matrix, and the chance baseline (1 / labels).
    """
    labels = sorted({t.label for t in traces})
    hits = 0
    per_label_hits = {label: 0 for label in labels}
    per_label_total = {label: 0 for label in labels}
    confusion: dict[str, dict[str, int]] = {}
    for i, held_out in enumerate(traces):
        rest = traces[:i] + traces[i + 1 :]
        predicted = FingerprintClassifier(rest).classify(held_out.features)
        per_label_total[held_out.label] += 1
        row = confusion.setdefault(held_out.label, {})
        row[predicted] = row.get(predicted, 0) + 1
        if predicted == held_out.label:
            hits += 1
            per_label_hits[held_out.label] += 1
    return {
        "labels": labels,
        "traces": len(traces),
        "chance_accuracy": round(1 / len(labels), 6) if labels else 0.0,
        "accuracy": round(hits / len(traces), 6) if traces else 0.0,
        "per_label_accuracy": {
            label: round(
                per_label_hits[label] / per_label_total[label], 6
            )
            for label in labels
            if per_label_total[label]
        },
        "confusion": confusion,
    }


# ----------------------------------------------------------------------
# The metering workbook: bench query families x selectivity bands
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LeakTrial:
    """One metered query: a (family, band) label plus concrete SQL."""

    family: str
    band: str
    sql: str

    @property
    def label(self) -> str:
        return f"{self.family}/{self.band}"


#: Visible-date cutoffs per selectivity band (the D2 sweep's endpoints,
#: with two neighbours each so every band has distinct trials).
SELECTIVE_CUTS = (
    datetime.date(2007, 3, 1),
    datetime.date(2007, 4, 10),
    datetime.date(2007, 5, 20),
)
WIDE_CUTS = (
    datetime.date(2005, 7, 1),
    datetime.date(2005, 10, 1),
    datetime.date(2006, 1, 15),
)


def leakage_workbook() -> list[LeakTrial]:
    """The bench query families as labeled, parameterised trials."""
    from repro.workload.queries import (
        demo_query,
        query_date_selectivity,
        query_purpose_only,
        query_type_selectivity,
    )

    trials: list[LeakTrial] = []
    for cut in SELECTIVE_CUTS:
        trials.append(
            LeakTrial("demo-join", "selective", demo_query(date_cutoff=cut))
        )
        trials.append(
            LeakTrial("date-sweep", "selective", query_date_selectivity(cut))
        )
    for cut in WIDE_CUTS:
        trials.append(LeakTrial("demo-join", "wide", demo_query(date_cutoff=cut)))
        trials.append(
            LeakTrial("date-sweep", "wide", query_date_selectivity(cut))
        )
    for med_type in ("Antibiotic", "Statin", "Analgesic"):
        trials.append(
            LeakTrial("type-only", "all", query_type_selectivity(med_type))
        )
    for purpose in ("Sclerosis", "Neuropathy", "Hypertension"):
        trials.append(
            LeakTrial("purpose-only", "all", query_purpose_only(purpose))
        )
    return trials


# ----------------------------------------------------------------------
# The metering run and its artifact
# ----------------------------------------------------------------------


@dataclass
class LeakMeterConfig:
    """One metering run's knobs."""

    scale: int = DEFAULT_LEAK_SCALE
    profile: str = "demo"


@dataclass
class LeakRun:
    """A finished metering run: scorecard plus vetted serialization."""

    artifact: dict
    #: Redacted JSON bytes, already verified CLEAN by the leak checker.
    payload: bytes
    leak_summary: str
    lines: list[str] = field(default_factory=list)

    def write(self, path: str) -> None:
        import os

        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(self.payload)


def default_artifact_name(today: datetime.date | None = None) -> str:
    today = today or datetime.date.today()
    return f"LEAK_{today.strftime('%Y%m%d')}.json"


def build_leak_artifact(
    *,
    scale: int,
    profile: str,
    families: dict[str, dict],
    classifier: dict,
) -> dict:
    """Assemble the scorecard dict.

    Deliberately timestamp-free: reruns on the same code and seed must
    serialize bit-identically (the determinism the gate rests on).
    """
    return {
        "kind": KIND,
        "schema_version": SCHEMA_VERSION,
        "config": {"scale": scale, "profile": profile},
        "families": families,
        "classifier": classifier,
        "leak_check": "CLEAN",
    }


#: Keys whose string values are shape-derived (hex signatures), never
#: data, and therefore safe through the redaction gate.
SIGNATURE_KEYS = frozenset({"request_signature", "signatures", "leak_request_signature"})


def leak_payload(artifact: dict, redactor=None) -> bytes:
    """Gate the scorecard through redaction and serialize it.

    Dict keys (family/band labels, metric names) and signature values
    are authored by this module from traffic *shape*; every other string
    value stays default-deny and scrubs to ``?``.
    """
    from repro.obs.redact import Redactor

    redactor = redactor or Redactor()
    redactor.allow(
        artifact.get("kind", ""), artifact.get("leak_check", ""),
        artifact.get("config", {}).get("profile", ""),
    )

    def _walk(value, parent_key: str = "") -> None:
        if isinstance(value, dict):
            for key, sub in value.items():
                redactor.allow(str(key))
                _walk(sub, str(key))
        elif isinstance(value, (list, tuple)):
            for sub in value:
                _walk(sub, parent_key)
        elif isinstance(value, str) and (
            parent_key in SIGNATURE_KEYS or parent_key in ("labels",)
        ):
            redactor.allow(value)

    _walk(artifact)
    scrubbed = redactor.value(artifact)
    text = json.dumps(scrubbed, indent=2, sort_keys=True) + "\n"
    return text.encode("utf-8")


def load_leak_artifact(path: str) -> dict:
    """Read one scorecard back, refusing foreign or future JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    if not isinstance(artifact, dict) or artifact.get("kind") != KIND:
        raise ValueError(f"{path}: not a {KIND} artifact")
    version = artifact.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: artifact schema_version {version!r}, "
            f"this tool speaks {SCHEMA_VERSION}"
        )
    return artifact


def run_leakage_meter(config: LeakMeterConfig | None = None) -> LeakRun:
    """Execute the metering workbook; see the module docstring."""
    from repro.core.factory import build_session
    from repro.hardware.profiles import PROFILES
    from repro.privacy.leakcheck import LeakChecker

    config = config or LeakMeterConfig()
    if config.profile not in PROFILES:
        raise LeakMeterError(
            f"unknown profile {config.profile!r}; "
            f"known: {', '.join(sorted(PROFILES))}"
        )
    session, data = build_session(
        profile=config.profile, scale=config.scale
    )

    trials = leakage_workbook()
    traces: list[LabeledTrace] = []
    by_label: dict[str, list[TrafficProfile]] = {}
    for trial in trials:
        session.reset_measurements()
        session.query(trial.sql)
        profile = profile_records(session.usb_log)
        by_label.setdefault(trial.label, []).append(profile)
        traces.append(
            LabeledTrace(label=trial.label, features=profile.feature_vector())
        )

    families: dict[str, dict] = {}
    lines: list[str] = []
    for label in sorted(by_label):
        profiles = by_label[label]
        families[label] = {
            "trials": len(profiles),
            "observable_bytes": sum(p.observable_bytes for p in profiles),
            "messages": sum(p.messages for p in profiles),
            "ids_observed": sum(p.ids_observed for p in profiles),
            "shape_entropy_bits_mean": round(
                sum(p.shape_entropy_bits for p in profiles) / len(profiles), 6
            ),
            "sim_seconds": round(
                sum(p.sim_duration_s for p in profiles), 9
            ),
            "signatures": sorted({p.signature for p in profiles}),
        }
        row = families[label]
        lines.append(
            f"{label:<22} {row['messages']:5d} msgs "
            f"{row['observable_bytes']:8d} B  {row['ids_observed']:7d} ids  "
            f"{row['shape_entropy_bits_mean']:.3f} bits  "
            f"{len(row['signatures'])} signature(s)"
        )

    classifier = evaluate_fingerprinting(traces)
    lines.append(
        f"fingerprint accuracy: {classifier['accuracy']:.3f} "
        f"(chance {classifier['chance_accuracy']:.3f}, "
        f"{classifier['traces']} traces x {len(classifier['labels'])} labels)"
    )

    artifact = build_leak_artifact(
        scale=config.scale,
        profile=config.profile,
        families=families,
        classifier=classifier,
    )
    payload = leak_payload(artifact, session.obs.redactor)
    checker = LeakChecker(session.schema, data)
    leak = checker.check_bytes(payload, kind="leakage-artifact")
    if not leak.ok:
        raise LeakMeterError(f"scorecard failed leak check: {leak.summary()}")
    return LeakRun(
        artifact=artifact,
        payload=payload,
        leak_summary=leak.summary(),
        lines=lines,
    )


# ----------------------------------------------------------------------
# The leakage-regression gate
# ----------------------------------------------------------------------

#: Per-family scalars the gate fails on when they *increase* (a wider
#: observable channel).  Decreases pass and are reported.
GATED_CHANNEL_METRICS = ("observable_bytes", "messages", "ids_observed")


@dataclass
class LeakageComparison:
    """Outcome of one leakage-baseline comparison."""

    tolerance: float
    families_compared: int = 0
    widened: list[str] = field(default_factory=list)
    narrowed: list[str] = field(default_factory=list)
    signature_changes: list[str] = field(default_factory=list)
    accuracy_regression: str | None = None
    missing_families: list[str] = field(default_factory=list)
    new_families: list[str] = field(default_factory=list)
    config_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.widened
            or self.signature_changes
            or self.accuracy_regression
            or self.missing_families
            or self.config_errors
        )

    def render(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"leakage comparison: {status} "
            f"({self.families_compared} families x "
            f"{len(GATED_CHANNEL_METRICS)} channel metrics, "
            f"tolerance {self.tolerance:.0%})"
        ]
        lines.extend(f"  config mismatch: {e}" for e in self.config_errors)
        lines.extend(
            f"  missing family: {name} (in baseline, not run)"
            for name in self.missing_families
        )
        lines.extend(f"  CHANNEL WIDENED {line}" for line in self.widened)
        lines.extend(
            f"  SIGNATURE CHANGED {line}" for line in self.signature_changes
        )
        if self.accuracy_regression:
            lines.append(f"  MORE IDENTIFIABLE {self.accuracy_regression}")
        lines.extend(f"  narrowed   {line}" for line in self.narrowed)
        lines.extend(
            f"  new family: {name} (no baseline -- commit a refreshed "
            f"benchmarks/leakage_baseline.json)"
            for name in self.new_families
        )
        return "\n".join(lines)


def compare_leakage(
    baseline: dict, current: dict, tolerance: float = 0.0
) -> LeakageComparison:
    """Diff two scorecards; any widening of the channel fails.

    Channel metrics are deterministic, so the default tolerance is zero:
    identical code reproduces the baseline exactly, and *any* growth in
    observable bytes, message counts, ID cardinalities, a changed
    request-sequence signature, or a classifier-accuracy gain beyond
    :data:`ACCURACY_TOLERANCE` is a leakage regression.
    """
    report = LeakageComparison(tolerance=tolerance)
    if baseline.get("schema_version") != current.get("schema_version"):
        report.config_errors.append(
            f"schema_version: baseline {baseline.get('schema_version')!r} "
            f"vs run {current.get('schema_version')!r}"
        )
    base_cfg = baseline.get("config", {})
    cur_cfg = current.get("config", {})
    for key in ("scale", "profile"):
        if base_cfg.get(key) != cur_cfg.get(key):
            report.config_errors.append(
                f"config.{key}: baseline {base_cfg.get(key)!r} "
                f"vs run {cur_cfg.get(key)!r}"
            )

    base_families = baseline.get("families", {})
    cur_families = current.get("families", {})
    report.missing_families = sorted(set(base_families) - set(cur_families))
    report.new_families = sorted(set(cur_families) - set(base_families))
    for name in sorted(set(base_families) & set(cur_families)):
        report.families_compared += 1
        base_row = base_families[name]
        cur_row = cur_families[name]
        for metric in GATED_CHANNEL_METRICS:
            base_value = float(base_row.get(metric, 0))
            cur_value = float(cur_row.get(metric, 0))
            line = f"{name}: {metric} {base_value:g} -> {cur_value:g}"
            if cur_value > base_value * (1 + tolerance):
                report.widened.append(line)
            elif cur_value < base_value * (1 - tolerance):
                report.narrowed.append(line)
        if base_row.get("signatures") != cur_row.get("signatures"):
            report.signature_changes.append(
                f"{name}: {base_row.get('signatures')} -> "
                f"{cur_row.get('signatures')}"
            )

    base_acc = float(baseline.get("classifier", {}).get("accuracy", 0.0))
    cur_acc = float(current.get("classifier", {}).get("accuracy", 0.0))
    if cur_acc > base_acc + ACCURACY_TOLERANCE:
        report.accuracy_regression = (
            f"fingerprint accuracy {base_acc:.3f} -> {cur_acc:.3f}"
        )
    return report


# ----------------------------------------------------------------------
# CLI: ``python -m repro leakmeter``
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro leakmeter",
        description="meter the traffic-shape leakage channel and write a "
        "deterministic LEAK_<date>.json scorecard",
    )
    parser.add_argument(
        "--scale", type=int, default=DEFAULT_LEAK_SCALE,
        help=f"prescriptions in the dataset (default {DEFAULT_LEAK_SCALE})",
    )
    parser.add_argument(
        "--profile", default="demo",
        help="hardware profile of the simulated device (default demo)",
    )
    parser.add_argument(
        "--leak-out", default=None, metavar="PATH",
        help="scorecard path (default LEAK_<date>.json in the cwd)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="compare against this committed scorecard and exit nonzero "
        "on a leakage regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.0,
        help="relative headroom before a channel metric counts as "
        "widened (default 0: the channel is deterministic)",
    )
    args = parser.parse_args(argv)

    try:
        run = run_leakage_meter(
            LeakMeterConfig(scale=args.scale, profile=args.profile)
        )
    except LeakMeterError as exc:
        print(f"error: {exc}")
        return 2

    for line in run.lines:
        print(line)
    print()
    print(run.leak_summary)

    out_path = args.leak_out or default_artifact_name()
    try:
        run.write(out_path)
    except OSError as exc:
        print(f"error: could not write scorecard: {exc}")
        return 2
    print(f"wrote {out_path} ({len(run.payload)} bytes)")

    if args.baseline:
        try:
            baseline = load_leak_artifact(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: could not read baseline: {exc}")
            return 2
        report = compare_leakage(
            baseline, run.artifact, tolerance=args.tolerance
        )
        print()
        print(report.render())
        return 0 if report.ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
