"""Mechanical verification that hidden data never crossed the boundary.

Three independent checks over the captured traffic:

1. **Structural**: device->host messages may only be ``request`` and
   ``fetch_ids`` -- the protocol's two outbound verbs.  Anything else is
   a protocol violation (there is no verb for hidden data, but a bug
   could invent one).
2. **Hidden value scan**: no hidden *string* value may appear (as UTF-8)
   in any payload, in either direction after load.  Strings of three or
   more characters are distinctive enough to scan for; numeric and date
   encodings are not (any 8-byte pattern eventually collides with packed
   ID streams), so for those columns the structural checks carry the
   guarantee.  The query text the user poses is exempt: the paper
   accepts revealing "the queries he poses", constants included.
3. **Request transparency**: outbound requests must parse as the known
   JSON request forms and may only name visible columns.

The checker is deliberately adversarial toward the engine: it is built
from the raw dataset, not from engine internals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.catalog.schema import Schema
from repro.hardware.usb import Direction, TrafficRecord
from repro.visible.frame import payload_of

#: Byte patterns shorter than this are too unspecific to scan for.
MIN_PATTERN_LEN = 3

#: Fault tags that mangle a frame in flight.  Such records are copies of
#: traffic that failed its CRC and was retransmitted; the intact
#: retransmission is also captured and fully checked, so the mangled
#: copy is exempt from *structural* parsing (its bytes are still
#: pattern-scanned -- corruption must not be a leak loophole).
MANGLING_FAULTS = {"corrupt", "truncate"}

ALLOWED_OUTBOUND_KINDS = {"request", "fetch_ids"}
ALLOWED_REQUEST_OPS = {"select_ids", "count_ids", "fetch_values"}


@dataclass
class LeakViolation:
    """One detected leak or protocol violation."""

    seq: int
    kind: str
    reason: str

    def __str__(self) -> str:
        return f"message #{self.seq} ({self.kind}): {self.reason}"


@dataclass
class LeakReport:
    """Outcome of a leak-check pass."""

    checked_messages: int
    checked_patterns: int
    violations: list[LeakViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "CLEAN" if self.ok else f"{len(self.violations)} VIOLATIONS"
        lines = [
            f"leak check: {status} "
            f"({self.checked_messages} messages x "
            f"{self.checked_patterns} hidden patterns)"
        ]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


class LeakChecker:
    """Builds the hidden-value corpus and scans captured traffic."""

    def __init__(self, schema: Schema, rows_by_table: dict[str, list]):
        self.schema = schema
        self._patterns: list[tuple[bytes, str]] = []
        self._collect_patterns(rows_by_table)

    def _collect_patterns(self, rows_by_table: dict[str, list]) -> None:
        seen: set[bytes] = set()
        for table in self.schema:
            rows = rows_by_table.get(table.name.lower())
            if not rows:
                continue
            hidden = [
                (i, col)
                for i, col in enumerate(table.columns)
                if col.hidden
            ]
            for row in rows:
                for idx, col in hidden:
                    value = row[idx]
                    if not isinstance(value, str):
                        continue
                    raw = value.encode("utf-8")
                    if len(raw) >= MIN_PATTERN_LEN and raw not in seen:
                        seen.add(raw)
                        self._patterns.append(
                            (raw, f"{table.name}.{col.name}={value!r}")
                        )

    @property
    def pattern_count(self) -> int:
        return len(self._patterns)

    # ------------------------------------------------------------------

    def check(self, records: list[TrafficRecord]) -> LeakReport:
        report = LeakReport(
            checked_messages=len(records),
            checked_patterns=len(self._patterns),
        )
        for record in records:
            self._check_structure(record, report)
            self._scan_payload(record, report)
        self._scan_streams(records, report)
        return report

    def check_bytes(self, payload: bytes, kind: str = "blob") -> LeakReport:
        """Scan one arbitrary byte blob for hidden values.

        Used for artefacts other than USB traffic -- exported traces,
        metric expositions, log captures -- which must uphold the same
        invariant: no hidden string value may appear anywhere in them.
        """
        report = LeakReport(
            checked_messages=1, checked_patterns=len(self._patterns)
        )
        for pattern, where in self._patterns:
            if pattern in payload:
                report.violations.append(
                    LeakViolation(
                        0, kind, f"payload contains hidden value {where}"
                    )
                )
        return report

    def _check_structure(self, record: TrafficRecord, report: LeakReport) -> None:
        if record.direction is not Direction.TO_HOST:
            return
        if record.kind not in ALLOWED_OUTBOUND_KINDS:
            report.violations.append(
                LeakViolation(
                    record.seq, record.kind,
                    f"outbound message kind {record.kind!r} is not in the "
                    f"protocol whitelist {sorted(ALLOWED_OUTBOUND_KINDS)}",
                )
            )
            return
        if record.kind == "request":
            if MANGLING_FAULTS.intersection(record.faults):
                # An injected fault garbled this frame in flight; the
                # link retransmitted it and the intact copy is checked.
                return
            self._check_request(record, report)

    def _check_request(self, record: TrafficRecord, report: LeakReport) -> None:
        try:
            body = json.loads(payload_of(record.payload).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            report.violations.append(
                LeakViolation(
                    record.seq, record.kind,
                    "outbound request is not readable JSON; requests must "
                    "be transparent",
                )
            )
            return
        op = body.get("op")
        if op not in ALLOWED_REQUEST_OPS:
            report.violations.append(
                LeakViolation(
                    record.seq, record.kind,
                    f"unknown request op {op!r}",
                )
            )
            return
        named_columns: list[tuple[str, str]] = []
        predicate = body.get("predicate")
        if predicate:
            named_columns.append((predicate["table"], predicate["column"]))
        for wire in body.get("recheck", []):
            named_columns.append((wire["table"], wire["column"]))
        for column in body.get("columns", []):
            named_columns.append((body["table"], column))
        for table_name, column_name in named_columns:
            table = self.schema.table(table_name)
            column = table.column(column_name)
            if column.hidden:
                report.violations.append(
                    LeakViolation(
                        record.seq, record.kind,
                        f"request names hidden column "
                        f"{table_name}.{column_name}",
                    )
                )

    def _scan_payload(self, record: TrafficRecord, report: LeakReport) -> None:
        if record.kind == "query" and record.direction is Direction.TO_DEVICE:
            # The user's own query text is an accepted revelation; its
            # constants may legitimately name hidden values.
            return
        payload = record.payload
        for pattern, where in self._patterns:
            if pattern in payload:
                report.violations.append(
                    LeakViolation(
                        record.seq, record.kind,
                        f"payload contains hidden value {where}",
                    )
                )

    def _scan_streams(self, records: list[TrafficRecord], report: LeakReport) -> None:
        """Catch hidden values split across consecutive messages.

        A value fragmented over two frames of the same logical stream
        (say, a ``values`` reply split across fetch batches) is invisible
        to the per-message scan: neither fragment alone matches.  The
        spy, however, sees the concatenated stream -- so the checker
        scans it too: unwrapped payloads concatenated per
        (direction, kind), reporting only matches no single message
        already accounted for.
        """
        streams: dict[tuple[str, str], list[TrafficRecord]] = {}
        for record in records:
            if record.kind == "query" and record.direction is Direction.TO_DEVICE:
                # Same exemption as the per-message scan.
                continue
            key = (record.direction.value, record.kind)
            streams.setdefault(key, []).append(record)
        for (direction, kind), members in streams.items():
            if len(members) < 2:
                continue
            payloads = [payload_of(r.payload) for r in members]
            joined = b"".join(payloads)
            for pattern, where in self._patterns:
                if pattern in joined and not any(
                    pattern in payload for payload in payloads
                ):
                    report.violations.append(
                        LeakViolation(
                            members[0].seq, kind,
                            f"hidden value {where} spans a message boundary "
                            f"in the {direction} {kind!r} stream",
                        )
                    )
