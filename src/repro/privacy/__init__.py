"""Privacy auditing: the spy's view and the leak checker.

Demo phase 1 ("Checking security") shows "what a pirate (e.g., Trojan
horse) would observe, snooping the data transferred between the
components of the architecture".  :class:`~repro.privacy.spy.SpyView`
renders that observation from the captured USB traffic;
:class:`~repro.privacy.leakcheck.LeakChecker` mechanically verifies the
paper's guarantee -- the only information revealed is the queries posed
and the visible data accessed.
"""

from repro.privacy.spy import SpyView, TrafficSummary
from repro.privacy.leakcheck import LeakChecker, LeakReport, LeakViolation

__all__ = [
    "LeakChecker",
    "LeakReport",
    "LeakViolation",
    "SpyView",
    "TrafficSummary",
]
