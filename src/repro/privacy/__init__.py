"""Privacy auditing: the spy's view, the leak checker, the leak meter.

Demo phase 1 ("Checking security") shows "what a pirate (e.g., Trojan
horse) would observe, snooping the data transferred between the
components of the architecture".  :class:`~repro.privacy.spy.SpyView`
renders that observation from the captured USB traffic;
:class:`~repro.privacy.leakcheck.LeakChecker` mechanically verifies the
paper's guarantee -- the only information revealed is the queries posed
and the visible data accessed.  :mod:`repro.privacy.meter` quantifies
what that accepted revelation is worth to the adversary: traffic-shape
scorecards plus a query-fingerprinting attack whose accuracy is the
leakage number.
"""

from repro.privacy.leakcheck import LeakChecker, LeakReport, LeakViolation
from repro.privacy.meter import (
    FingerprintClassifier,
    LeakMeterConfig,
    LeakMeterError,
    TrafficProfile,
    compare_leakage,
    evaluate_fingerprinting,
    profile_records,
    render_profile,
    request_signature,
    run_leakage_meter,
)
from repro.privacy.spy import IdStats, SpyView, TrafficSummary, unpack_ids

__all__ = [
    "FingerprintClassifier",
    "IdStats",
    "LeakChecker",
    "LeakMeterConfig",
    "LeakMeterError",
    "LeakReport",
    "LeakViolation",
    "SpyView",
    "TrafficProfile",
    "TrafficSummary",
    "compare_leakage",
    "evaluate_fingerprinting",
    "profile_records",
    "render_profile",
    "request_signature",
    "run_leakage_meter",
    "unpack_ids",
]
