"""The spy's view of the trust boundary.

Everything in here works from the captured USB traffic alone -- exactly
the position of a Trojan horse on the terminal.  It can read requests
(they are JSON by design), see ID lists and fetched values, count bytes
and time transfers.  It can *not* see inside the device; this module is
the demo's proof of that, because what it renders is all there is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.usb import Direction, TrafficRecord
from repro.visible.frame import payload_of


@dataclass
class TrafficSummary:
    """Aggregate of one direction/kind bucket."""

    direction: str
    kind: str
    messages: int = 0
    bytes: int = 0


@dataclass
class SpyView:
    """Everything an observer of the USB bus learns."""

    records: list[TrafficRecord]

    def summary(self) -> list[TrafficSummary]:
        """Per (direction, kind) message and byte counts."""
        buckets: dict[tuple[str, str], TrafficSummary] = {}
        for record in self.records:
            key = (record.direction.value, record.kind)
            bucket = buckets.get(key)
            if bucket is None:
                bucket = TrafficSummary(
                    direction=record.direction.value, kind=record.kind
                )
                buckets[key] = bucket
            bucket.messages += 1
            bucket.bytes += record.size
        return [buckets[k] for k in sorted(buckets)]

    def requests(self) -> list[str]:
        """The decoded device->host requests (readable by design)."""
        out = []
        for record in self.records:
            if record.direction is Direction.TO_HOST and record.kind == "request":
                out.append(
                    payload_of(record.payload).decode("utf-8", errors="replace")
                )
        return out

    def observed_ids(self) -> dict[str, int]:
        """How many IDs crossed, by message kind."""
        counts: dict[str, int] = {}
        for record in self.records:
            if record.kind in ("ids", "fetch_ids"):
                ids = len(payload_of(record.payload)) // 4
                counts[record.kind] = counts.get(record.kind, 0) + ids
        return counts

    def transcript(self, max_payload: int = 60) -> str:
        """A human-readable dump of the captured traffic."""
        lines = []
        for record in self.records:
            payload = record.payload[:max_payload]
            try:
                shown = payload.decode("utf-8")
                shown = shown.replace("\n", "\\n").replace("\r", "\\r")
            except UnicodeDecodeError:
                shown = payload.hex()
            suffix = "..." if record.size > max_payload else ""
            lines.append(
                f"[{record.seq:4d}] {record.direction.value:14s} "
                f"{record.kind:13s} {record.size:6d} B  {shown}{suffix}"
            )
        return "\n".join(lines)

    @property
    def total_bytes(self) -> int:
        return sum(record.size for record in self.records)
