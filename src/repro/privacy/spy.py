"""The spy's view of the trust boundary.

Everything in here works from the captured USB traffic alone -- exactly
the position of a Trojan horse on the terminal.  It can read requests
(they are JSON by design), see ID lists and fetched values, count bytes
and time transfers.  It can *not* see inside the device; this module is
the demo's proof of that, because what it renders is all there is.

:mod:`repro.privacy.meter` builds on this view: it turns the same
captured traffic into quantitative leakage scorecards and runs the
query-fingerprinting attack the traffic shape enables.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.hardware.usb import Direction, TrafficRecord
from repro.visible.frame import ID_WIDTH_BYTES, payload_of

_ID = struct.Struct(">I")

#: Message kinds whose payloads are packed ID lists.
ID_KINDS = ("ids", "fetch_ids")


def unpack_ids(payload: bytes) -> list[int]:
    """Decode a packed ID-list payload the way the spy would.

    Trailing bytes that do not fill a whole ID (a truncated frame) are
    ignored -- the spy reads what it can.
    """
    whole = len(payload) - len(payload) % ID_WIDTH_BYTES
    return [v for (v,) in _ID.iter_unpack(payload[:whole])]


@dataclass
class TrafficSummary:
    """Aggregate of one direction/kind bucket."""

    direction: str
    kind: str
    messages: int = 0
    bytes: int = 0


@dataclass(frozen=True)
class IdStats:
    """What the spy learns about the IDs crossing in one message kind."""

    kind: str
    #: IDs observed, counting repeats.
    total: int
    #: Distinct ID values observed.
    distinct: int

    @property
    def repeated_ratio(self) -> float:
        """Fraction of observed IDs that were repeats of earlier ones.

        Re-fetched IDs correlate messages with each other -- a join that
        probes the same rows twice shows up here even though every
        individual message looks innocent.
        """
        if self.total == 0:
            return 0.0
        return 1.0 - self.distinct / self.total


@dataclass
class SpyView:
    """Everything an observer of the USB bus learns."""

    records: list[TrafficRecord]

    def summary(self) -> list[TrafficSummary]:
        """Per (direction, kind) message and byte counts."""
        buckets: dict[tuple[str, str], TrafficSummary] = {}
        for record in self.records:
            key = (record.direction.value, record.kind)
            bucket = buckets.get(key)
            if bucket is None:
                bucket = TrafficSummary(
                    direction=record.direction.value, kind=record.kind
                )
                buckets[key] = bucket
            bucket.messages += 1
            bucket.bytes += record.size
        return [buckets[k] for k in sorted(buckets)]

    def requests(self) -> list[str]:
        """The decoded device->host requests (readable by design)."""
        out = []
        for record in self.records:
            if record.direction is Direction.TO_HOST and record.kind == "request":
                out.append(
                    payload_of(record.payload).decode("utf-8", errors="replace")
                )
        return out

    def observed_ids(self) -> dict[str, int]:
        """How many IDs crossed, by message kind (repeats counted)."""
        return {
            kind: stats.total for kind, stats in self.id_stats().items()
        }

    def id_stats(self) -> dict[str, IdStats]:
        """Total, distinct and repeated-ID statistics per message kind.

        The leakage meter consumes these: ID-list cardinalities are the
        single most query-identifying observable, and the repeated-ID
        ratio separates re-probing plans from streaming ones.
        """
        observed: dict[str, list[int]] = {}
        for record in self.records:
            if record.kind in ID_KINDS:
                observed.setdefault(record.kind, []).extend(
                    unpack_ids(payload_of(record.payload))
                )
        return {
            kind: IdStats(kind=kind, total=len(ids), distinct=len(set(ids)))
            for kind, ids in observed.items()
        }

    def transcript(self, max_payload: int = 60) -> str:
        """A human-readable dump of the captured traffic.

        CRC frames are unwrapped first (:func:`payload_of`), so readable
        JSON payloads render as JSON instead of a hex-dumped frame
        header; the reported size stays the on-the-wire (framed) size.
        """
        lines = []
        for record in self.records:
            payload = payload_of(record.payload)
            shown_bytes = payload[:max_payload]
            try:
                shown = shown_bytes.decode("utf-8")
                shown = shown.replace("\n", "\\n").replace("\r", "\\r")
            except UnicodeDecodeError:
                shown = shown_bytes.hex()
            suffix = "..." if len(payload) > max_payload else ""
            lines.append(
                f"[{record.seq:4d}] {record.direction.value:14s} "
                f"{record.kind:13s} {record.size:6d} B  {shown}{suffix}"
            )
        return "\n".join(lines)

    @property
    def total_bytes(self) -> int:
        return sum(record.size for record in self.records)
