"""Brute-force reference evaluator.

Evaluates a bound SPJ query directly over the full (unsplit) rows in host
memory -- no device, no indexes, no privacy.  Tests and benchmarks use it
as ground truth for every GhostDB plan: whatever the strategy, the result
multiset must equal the reference's.
"""

from __future__ import annotations

from collections import Counter

from repro.catalog.tree import SchemaTree
from repro.sql.binder import BoundQuery


def evaluate_reference(
    tree: SchemaTree,
    rows_by_table: dict[str, list],
    query: BoundQuery,
) -> list[tuple]:
    """All result rows of ``query`` over ``rows_by_table``.

    Joins are evaluated by walking the query's join edges from the query
    root downward; selections and projections use full rows.
    """
    indexed: dict[str, dict[int, tuple]] = {}
    for name in query.tables:
        table_def = tree.table(name)
        pk_idx = table_def.column_index(table_def.pk.name)
        indexed[name] = {
            row[pk_idx]: row for row in rows_by_table[name.lower()]
        }

    preds_by_table: dict[str, list] = {}
    for predicate in query.predicates:
        table_def = tree.table(predicate.table)
        col_idx = table_def.column_index(predicate.column)
        preds_by_table.setdefault(predicate.table, []).append(
            (col_idx, predicate)
        )

    # parent -> [(fk index in parent row, child table)]
    edges: dict[str, list[tuple[int, str]]] = {}
    for join in query.joins:
        parent_def = tree.table(join.parent)
        fk_idx = parent_def.column_index(join.fk_column)
        edges.setdefault(join.parent, []).append((fk_idx, join.child))

    projections = []
    for table, column in query.projections:
        table_def = tree.table(table)
        projections.append((table, table_def.column_index(column.name)))

    def row_passes(table: str, row: tuple) -> bool:
        return all(
            p.matches(row[idx]) for idx, p in preds_by_table.get(table, [])
        )

    results: list[tuple] = []

    def descend(table: str, row: tuple, bound_rows: dict[str, tuple]) -> bool:
        if not row_passes(table, row):
            return False
        bound_rows[table] = row
        for fk_idx, child in edges.get(table, []):
            child_row = indexed[child].get(row[fk_idx])
            if child_row is None:
                return False
            if not descend(child, child_row, bound_rows):
                return False
        return True

    root = query.root
    for row in indexed[root].values():
        bound_rows: dict[str, tuple] = {}
        if descend(root, row, bound_rows):
            results.append(
                tuple(bound_rows[t][idx] for t, idx in projections)
            )
    results = _apply_grouping(query, results)
    results = _apply_order_and_limit(query, results)
    return results


def _aggregate_value(aggregate, members: list[tuple]):
    if aggregate.func == "count":
        return len(members)
    values = [m[aggregate.input_index] for m in members]
    if aggregate.func == "sum":
        return sum(values)
    if aggregate.func == "avg":
        return sum(values) / len(values)
    if aggregate.func == "min":
        return min(values)
    if aggregate.func == "max":
        return max(values)
    raise ValueError(f"unknown aggregate {aggregate.func!r}")


def _apply_grouping(query: BoundQuery, rows: list[tuple]) -> list[tuple]:
    """GROUP BY + aggregates + HAVING over the base projection rows."""
    from repro.sql.binder import compare_values

    if not query.is_grouped:
        return rows
    groups: dict[tuple, list[tuple]] = {}
    for row in rows:
        key = tuple(row[i] for i in query.group_by_indexes)
        groups.setdefault(key, []).append(row)
    out = []
    for key in sorted(groups):
        members = groups[key]
        passes = True
        for kind, index, op, literal in query.having:
            if kind == "key":
                actual = key[query.group_by_indexes.index(index)]
            else:
                actual = _aggregate_value(query.aggregates[index], members)
            if not compare_values(op, actual, literal):
                passes = False
                break
        if not passes:
            continue
        result = []
        for kind, ref in query.output_items:
            if kind == "key":
                result.append(key[query.group_by_indexes.index(ref)])
            else:
                result.append(
                    _aggregate_value(query.aggregates[ref], members)
                )
        out.append(tuple(result))
    return out


def _apply_order_and_limit(query: BoundQuery, rows: list[tuple]) -> list[tuple]:
    if query.order_by:
        for index, ascending in reversed(query.order_by):
            rows = sorted(
                rows, key=lambda r: r[index], reverse=not ascending
            )
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows


def same_rows(a: list[tuple], b: list[tuple]) -> bool:
    """Multiset equality of result rows (order-insensitive)."""
    return Counter(a) == Counter(b)
