"""Privacy audit: play the spy, then play the auditor.

Runs a battery of queries over the hidden/visible split, shows exactly
what crossed the trust boundary, verifies the leak checker's CLEAN
verdict -- and then stages an exfiltration attempt to prove the checker
actually catches violations.

Run:  python examples/privacy_audit.py
"""

from repro import GhostDB
from repro.hardware.usb import Direction
from repro.privacy import LeakChecker, SpyView
from repro.workload import DEMO_SCHEMA_DDL, DatasetConfig, MedicalDataGenerator
from repro.workload.queries import demo_query

AUDIT_QUERIES = {
    "the paper's demo query": demo_query(),
    "hidden-only selection": """
        SELECT Pre.Quantity FROM Prescription Pre, Visit Vis
        WHERE Vis.Purpose = 'Sclerosis' AND Vis.VisID = Pre.VisID""",
    "patient lookup by hidden name": """
        SELECT Age, Country FROM Patient WHERE Name = 'Marie Martin'""",
    "five-way join": """
        SELECT Med.Name, Doc.Country, Pre.Quantity
        FROM Medicine Med, Prescription Pre, Visit Vis, Doctor Doc,
             Patient Pat
        WHERE Vis.Purpose = 'Sclerosis' AND Doc.Country = 'France'
        AND Med.MedID = Pre.MedID AND Vis.VisID = Pre.VisID
        AND Doc.DocID = Vis.DocID AND Pat.PatID = Vis.PatID""",
}


def main() -> None:
    db = GhostDB()
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    data = MedicalDataGenerator(
        DatasetConfig(n_prescriptions=10_000)
    ).generate()
    db.load(data)
    checker = LeakChecker(db.schema, data)
    print(
        f"auditing against {checker.pattern_count} distinct hidden "
        f"string values\n"
    )

    for name, sql in AUDIT_QUERIES.items():
        db.reset_measurements()
        result = db.query(sql)
        spy = SpyView(db.usb_log)
        report = checker.check(db.usb_log)
        status = "CLEAN" if report.ok else "LEAK!"
        print(f"[{status}] {name}")
        print(
            f"        {result.row_count} rows | spy saw "
            f"{len(db.usb_log)} messages, {spy.total_bytes} B "
            f"({spy.observed_ids().get('ids', 0)} visible-selection ids, "
            f"{spy.observed_ids().get('fetch_ids', 0)} projected ids)"
        )
        for request in spy.requests():
            print(f"        spy reads: {request[:100]}")
        assert report.ok
        print()

    print("-" * 72)
    print("now staging an exfiltration attempt (a compromised firmware")
    print("trying to push a hidden Purpose value to the host)...")
    db.device.usb.transfer(
        Direction.TO_HOST,
        "request",
        b'{"op": "select_ids", "note": "Sclerosis"}',
    )
    report = checker.check(db.usb_log)
    print(report.summary())
    assert not report.ok, "the auditor must catch this"
    print("\nthe leak checker caught it.  Audit complete.")


if __name__ == "__main__":
    main()
