"""Quickstart: declare a schema with HIDDEN columns, load, query.

Run:  python examples/quickstart.py
"""

from repro import GhostDB
from repro.workload import (
    DEMO_SCHEMA_DDL,
    DatasetConfig,
    MedicalDataGenerator,
    demo_query,
)


def main() -> None:
    # 1. A GhostDB session owns both sides: the visible site (PC/server)
    #    and the simulated smart USB device that holds hidden columns.
    db = GhostDB()

    # 2. Standard CREATE TABLE statements; HIDDEN marks the columns that
    #    must never leave the device (Figure 3's schema).
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)

    # 3. Load once, "in a secure setting": the loader splits each row
    #    into its public part and its device part, and builds the SKTs
    #    and climbing indexes.
    data = MedicalDataGenerator(
        DatasetConfig(n_prescriptions=10_000)
    ).generate()
    db.load(data)

    # 4. Unchanged SQL.  The optimizer picks a Pre/Post/Cross-filtering
    #    plan; execution spans both sides of the trust boundary.
    sql = demo_query()
    print("query:")
    print(sql)
    print("chosen plan:")
    print(db.explain(sql))

    result = db.query(sql)
    print(f"\n{result.row_count} result rows:")
    for row in result.rows[:10]:
        print("  ", dict(zip(result.columns, row)))

    # 5. Every hardware cost was simulated and accounted.
    print("\nexecution metrics:")
    print(result.metrics.report())


if __name__ == "__main__":
    main()
