"""Plan laboratory: build and race ad-hoc query execution plans.

The demo GUI lets visitors rearrange high-level operators and watch the
consequences.  This script does the same programmatically: it builds the
paper's P1 and P2, plus two custom variants (a Store-less post-filter
and a cross-filtered hybrid), explains each with cost estimates, races
them, and compares estimated against measured cost.

Run:  python examples/plan_lab.py
"""

import datetime

from repro import GhostDB
from repro.demo.plans import figure5_postfilter_plan, prefilter_plan
from repro.engine import plan as lp
from repro.optimizer.explain import explain_plan
from repro.optimizer.space import PlanBuilder, Strategy
from repro.workload import DEMO_SCHEMA_DDL, DatasetConfig, MedicalDataGenerator
from repro.workload.queries import demo_query


def build_candidates(db, bound):
    """Four hand-built plans for the demo query."""
    builder = PlanBuilder(db.hidden, bound)
    candidates = {
        "P1: all pre-filtering": prefilter_plan(db.hidden, bound),
        "P2: Figure 5 (Store + Blooms)": figure5_postfilter_plan(
            db.hidden, bound
        ),
        "P3: post-filtering without Store": builder.build(
            Strategy.all_post(bound)
        ),
    }
    # P4: date pre (cross-filtered with the hidden purpose), type post.
    date_index = next(
        i for i, p in enumerate(bound.visible_predicates)
        if p.column == "date"
    )
    choices = ["post", "post"]
    choices[date_index] = "pre"
    candidates["P4: cross-pre date, post type"] = builder.build(
        Strategy(tuple(choices))
    )
    return candidates


def main() -> None:
    db = GhostDB()
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    db.load(
        MedicalDataGenerator(DatasetConfig(n_prescriptions=20_000)).generate()
    )
    sql = demo_query(date_cutoff=datetime.date(2006, 6, 1))
    bound = db.bind(sql)
    candidates = build_candidates(db, bound)

    print("query:\n" + sql)
    results = {}
    for name, plan in candidates.items():
        db.optimizer.annotate(plan)
        print("\n" + "-" * 72)
        print(name)
        print("-" * 72)
        print(explain_plan(plan, db.optimizer.cost_model))
        db.reset_measurements()
        results[name] = db.execute_plan(plan)

    print("\n" + "=" * 72)
    print("the race (estimated vs measured simulated time)")
    print("=" * 72)
    reference_rows = None
    for name, result in results.items():
        estimate = db.optimizer.cost_model.estimate(result.plan)
        print(
            f"  {name:36s} est {estimate.seconds * 1e3:8.2f} ms | "
            f"measured {result.metrics.elapsed_seconds * 1e3:8.2f} ms | "
            f"ram {result.metrics.ram_high_water:6d} B | "
            f"{result.row_count} rows"
        )
        if reference_rows is None:
            reference_rows = sorted(result.rows)
        assert sorted(result.rows) == reference_rows, "plans must agree!"
    winner = min(
        results, key=lambda n: results[n].metrics.elapsed_seconds
    )
    print(f"\nfastest plan: {winner}")


if __name__ == "__main__":
    main()
