"""The full VLDB'07 demonstration scenario, as a script.

Walks the three phases of Section 5: checking security, testing the
query engine (P1 vs P2), and the find-the-fastest-plan game.

Run:  python examples/hospital_demo.py [n_prescriptions]
"""

import sys

from repro.demo import DemoScenario


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    print(f"building the demo platform ({scale} prescriptions)...")
    scenario = DemoScenario(n_prescriptions=scale)

    print("\n" + "=" * 72)
    print("PHASE 1 -- Checking security")
    print("=" * 72)
    phase1 = scenario.phase_security()
    print(f"\ndemo query returned {phase1.result.row_count} rows "
          f"(rendered on the secure display, not the USB link)\n")
    print("what a pirate snooping the USB bus observes:")
    print(phase1.spy.transcript(max_payload=48))
    print()
    print(phase1.leak_report.summary())

    print("\n" + "=" * 72)
    print("PHASE 2 -- Testing the query engine (P1 vs P2)")
    print("=" * 72)
    phase2 = scenario.phase_engine()
    print()
    print(phase2.comparison())
    for name, result in phase2.runs.items():
        print(f"\noperator popups for {name}:")
        for op in result.metrics.operators:
            print("  " + op.line())

    print("\n" + "=" * 72)
    print("PHASE 3 -- ... and playing a game")
    print("=" * 72)
    game = scenario.phase_game()
    print("\ncandidate plans:")
    for i, label in enumerate(game.candidates()):
        print(f"  [{i}] {label}")
    guess = 0  # the naive visitor bets on all-PRE
    print(f"\nyour guess: [{guess}] {game.candidates()[guess]}")
    outcome = game.play(guess_index=guess)
    print()
    print(outcome.leaderboard())
    verdict = "you win the prize!" if outcome.guess_was_right else (
        "the unusual strategies strike again -- no prize this time."
    )
    print(f"\n{verdict}")


if __name__ == "__main__":
    main()
