"""A longitudinal research study over hidden medical data.

The scenario the paper's introduction motivates: a researcher entrusted
with sensitive hospital data wants statistics that *combine* hidden and
visible columns -- average dosage per (hidden) visit purpose, say --
without the hidden values ever reaching the machines the study runs on.

This script runs the study with GhostDB's aggregate support, appends a
new month of data (a re-synchronisation session), re-runs the study,
saves the key to disk and verifies the restored key answers identically.

Run:  python examples/research_study.py
"""

import datetime
import tempfile
from pathlib import Path

from repro import GhostDB
from repro.privacy import LeakChecker, SpyView
from repro.workload import DEMO_SCHEMA_DDL, DatasetConfig, MedicalDataGenerator

STUDY_SQL = """
    SELECT Vis.Purpose, count(*), avg(Pre.Quantity)
    FROM Prescription Pre, Visit Vis
    WHERE Vis.VisID = Pre.VisID
    GROUP BY Vis.Purpose
    HAVING count(*) > 20
    ORDER BY Vis.Purpose
"""

FOLLOWUP_SQL = """
    SELECT Med.Type, sum(Pre.Quantity)
    FROM Medicine Med, Prescription Pre
    WHERE Pre.WhenWritten > DATE '2007-01-01'
    AND Med.MedID = Pre.MedID
    GROUP BY Med.Type
    ORDER BY Med.Type
"""


def print_table(result) -> None:
    print("  " + " | ".join(result.columns))
    for row in result.rows:
        print(
            "  " + " | ".join(
                f"{v:.2f}" if isinstance(v, float) else str(v)
                for v in row
            )
        )
    m = result.metrics
    print(
        f"  ({m.elapsed_seconds * 1e3:.1f} ms simulated, "
        f"ram {m.ram_high_water} B)\n"
    )


def main() -> None:
    db = GhostDB()
    for ddl in DEMO_SCHEMA_DDL:
        db.execute(ddl)
    data = MedicalDataGenerator(
        DatasetConfig(n_prescriptions=10_000)
    ).generate()
    db.load(data)
    checker = LeakChecker(db.schema, data)

    print("== study: average dosage per (hidden) visit purpose ==")
    db.reset_measurements()
    result = db.query(STUDY_SQL)
    print_table(result)
    spy = SpyView(db.usb_log)
    print(
        f"the spy saw {spy.total_bytes} B cross the boundary; "
        f"leak check: {'CLEAN' if checker.check(db.usb_log).ok else 'LEAK'}"
    )
    assert checker.check(db.usb_log).ok

    print("\n== a new month of data arrives (secure re-sync session) ==")
    next_vis = len(data["visit"]) + 1
    next_pre = len(data["prescription"]) + 1
    new_visits = [
        (
            next_vis + i,
            datetime.date(2007, 7, 1) + datetime.timedelta(days=i % 30),
            "Sclerosis" if i % 5 == 0 else "Routine checkup",
            1 + i % 10,
            1 + i % 50,
        )
        for i in range(60)
    ]
    new_pres = [
        (
            next_pre + i,
            (i % 10) + 1,
            "once daily",
            datetime.date(2007, 7, 2) + datetime.timedelta(days=i % 28),
            1 + i % 100,
            next_vis + (i % 60),
        )
        for i in range(300)
    ]
    report = db.append("visit", new_visits)
    print(f"  {report.summary()}")
    report = db.append("prescription", new_pres)
    print(f"  {report.summary()}")

    print("\n== study re-run over the merged data ==")
    db.reset_measurements()
    print_table(db.query(STUDY_SQL))

    print("== follow-up: dosage volume per medicine type since 2007 ==")
    db.reset_measurements()
    print_table(db.query(FOLLOWUP_SQL))

    print("== unplug the key, replug, verify ==")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "study-key.ghostdb"
        db.save(str(path))
        print(f"  key image: {path.stat().st_size / 1024:.0f} KiB")
        restored = GhostDB.restore(str(path))
        a = db.query(STUDY_SQL).rows
        b = restored.query(STUDY_SQL).rows
        assert a == b
        print("  restored key answers identically.  Study archived.")


if __name__ == "__main__":
    main()
